// Observability overhead microbenches: the raw cost of each instrument's
// hot path (relaxed atomics), the unwired (null-pointer) path, and — the
// acceptance gate — the DQN hot loops instrumented vs uninstrumented. The
// contract is <= 5% overhead on SelectAction/Replay with metrics wired;
// building with -DJARVIS_OBS_OFF deletes the instrumentation statements
// outright, which this binary also runs correctly (the registry paths
// below bench the library itself, not the macro).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "fsm/device_library.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rl/dqn_agent.h"

namespace {

using namespace jarvis;

const fsm::EnvironmentFsm& Home() {
  static const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  return home;
}

void BM_CounterIncrement(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrement);

void BM_CounterNullCheckOnly(benchmark::State& state) {
  // The unwired path every instrumented call site pays: one pointer test.
  obs::Counter* counter = nullptr;
  benchmark::DoNotOptimize(counter);
  for (auto _ : state) {
    if (counter != nullptr) counter->Increment();
  }
}
BENCHMARK(BM_CounterNullCheckOnly);

void BM_GaugeSet(benchmark::State& state) {
  obs::Registry registry;
  obs::Gauge* gauge = registry.GetGauge("bench.gauge");
  double x = 0.0;
  for (auto _ : state) {
    gauge->Set(x);
    x += 1.0;
  }
  benchmark::DoNotOptimize(gauge->Value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* hist =
      registry.GetHistogram("bench.hist", obs::DefaultLatencyBoundsUs());
  double x = 0.0;
  for (auto _ : state) {
    hist->Observe(x);
    x += 13.0;
    if (x > 2.0e6) x = 0.0;
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistrySnapshot(benchmark::State& state) {
  obs::Registry registry;
  for (int i = 0; i < 32; ++i) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Increment();
    registry.GetTimerUs("bench.timer." + std::to_string(i))->Observe(42.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.TakeSnapshot());
  }
}
BENCHMARK(BM_RegistrySnapshot)->Unit(benchmark::kMicrosecond);

void BM_ScopedSpan(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "bench.span");
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(tracer.Flush());
}
BENCHMARK(BM_ScopedSpan);

void BM_ScopedSpanNull(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedSpanNull);

// --- The acceptance gate: DQN hot loops, wired vs unwired ----------------

rl::DqnAgent MakeAgent(bool fill_replay) {
  rl::DqnConfig config;
  config.epsilon = 0.0;
  config.batch_size = 32;
  rl::DqnAgent agent(44, Home().codec(), config);
  if (fill_replay) {
    for (int i = 0; i < 256; ++i) {
      rl::Experience experience;
      experience.features.assign(44, 0.1 * (i % 10));
      experience.taken_slots = {
          static_cast<std::size_t>(i % Home().codec().mini_action_count())};
      experience.reward = 0.5;
      experience.next_features.assign(44, 0.2);
      experience.next_mask.assign(Home().codec().mini_action_count(), true);
      agent.Remember(std::move(experience));
    }
  }
  return agent;
}

void RunSelectAction(benchmark::State& state, bool instrumented) {
  obs::Registry registry;
  rl::DqnAgent agent = MakeAgent(false);
  if (instrumented) agent.SetMetrics(&registry);
  const std::vector<double> features(44, 0.3);
  const std::vector<bool> mask(Home().codec().mini_action_count(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.SelectAction(features, mask, true));
  }
}

void BM_DqnSelectActionBaseline(benchmark::State& state) {
  RunSelectAction(state, false);
}
BENCHMARK(BM_DqnSelectActionBaseline);

void BM_DqnSelectActionInstrumented(benchmark::State& state) {
  RunSelectAction(state, true);
}
BENCHMARK(BM_DqnSelectActionInstrumented);

void RunReplay(benchmark::State& state, bool instrumented) {
  obs::Registry registry;
  rl::DqnAgent agent = MakeAgent(true);
  if (instrumented) agent.SetMetrics(&registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Replay());
  }
}

void BM_DqnReplayBaseline(benchmark::State& state) {
  RunReplay(state, false);
}
BENCHMARK(BM_DqnReplayBaseline)->Unit(benchmark::kMicrosecond);

void BM_DqnReplayInstrumented(benchmark::State& state) {
  RunReplay(state, true);
}
BENCHMARK(BM_DqnReplayInstrumented)->Unit(benchmark::kMicrosecond);

}  // namespace
