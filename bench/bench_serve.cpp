// Serving-daemon bench: request latency through the full framed path
// (client transport → server admission → dispatcher → response) and the
// admission-control overload sweep. Runs entirely in-process over a
// loopback transport, so every count is a pure function of the
// configuration: the latency cases pace requests one at a time (admission
// can never reject), and the overload sweep parks the only worker on a
// `stall` before bursting, making accepted/rejected exact arithmetic on
// queue_capacity. Those integers are gated exactly by tools/check_bench.py
// against bench/baselines/BENCH_serve.json; the latency percentiles are
// advisory (runners differ). Writes BENCH_serve.json next to the
// human-readable table. Pass --smoke for the CI-sized run (the committed
// baseline is the --smoke shape).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "events/event.h"
#include "fsm/device_library.h"
#include "runtime/fleet.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "sim/resident.h"
#include "util/json.h"
#include "util/timeofday.h"

namespace {

using namespace jarvis;

runtime::FleetConfig TinyFleetConfig() {
  runtime::FleetConfig config;
  config.tenants = 1;
  config.jobs = 1;
  config.fleet_seed = 2026;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = 2;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 2;
  return config;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> sorted_us, double fraction) {
  std::sort(sorted_us.begin(), sorted_us.end());
  const auto index = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(fraction *
                               static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

struct LatencyOutcome {
  std::size_t sent = 0;
  std::size_t ok = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double total_ms = 0;
};

// One paced request→response loop over a fresh loopback connection.
// Sequential pacing means the queue never fills: every request is admitted
// and answered ok, which is what makes `sent`/`ok` deterministic.
template <typename MakePayload>
LatencyOutcome RunLatencyCase(serve::Server& server, int requests,
                              MakePayload make_payload) {
  serve::LoopbackPair pair = serve::MakeLoopbackPair();
  std::thread serving([&server, &pair] { server.Serve(*pair.server); });

  LatencyOutcome outcome;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(requests));
  const auto begin = std::chrono::steady_clock::now();
  std::string payload;
  for (int i = 0; i < requests; ++i) {
    ++outcome.sent;
    const auto start = std::chrono::steady_clock::now();
    pair.client->WritePayload(make_payload(i));
    if (pair.client->ReadPayload(&payload) !=
        serve::FramedTransport::ReadResult::kPayload) {
      break;
    }
    latencies_us.push_back(MsSince(start) * 1000.0);
    if (serve::ResponseOk(util::JsonValue::Parse(payload))) ++outcome.ok;
  }
  outcome.total_ms = MsSince(begin);
  pair.client->CloseWrite();
  serving.join();

  if (!latencies_us.empty()) {
    outcome.p50_us = Percentile(latencies_us, 0.50);
    outcome.p99_us = Percentile(latencies_us, 0.99);
    outcome.p999_us = Percentile(latencies_us, 0.999);
  }
  return outcome;
}

util::JsonValue LatencyCaseJson(const char* name,
                                const LatencyOutcome& outcome) {
  util::JsonObject deterministic;
  deterministic["sent"] = static_cast<std::int64_t>(outcome.sent);
  deterministic["ok"] = static_cast<std::int64_t>(outcome.ok);
  util::JsonObject advisory;
  advisory["p50_us"] = outcome.p50_us;
  advisory["p99_us"] = outcome.p99_us;
  advisory["p999_us"] = outcome.p999_us;
  advisory["total_ms"] = outcome.total_ms;
  util::JsonObject kase;
  kase["name"] = name;
  kase["deterministic"] = util::JsonValue(std::move(deterministic));
  kase["advisory"] = util::JsonValue(std::move(advisory));
  return util::JsonValue(std::move(kase));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int pings = smoke ? 300 : 2000;
  const int suggests = smoke ? 120 : 600;
  const int batches = smoke ? 40 : 200;
  const int ingests = smoke ? 120 : 600;

  bench::PrintHeader(
      "Serving daemon: framed request latency + admission overload sweep",
      "serving subsystem (DESIGN.md §15); not a paper figure");
  std::printf("mode: %s\n", smoke ? "smoke" : "full");

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  runtime::Fleet fleet(home, TinyFleetConfig());
  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = 1;
  workload.benign_anomaly_samples = 100;
  fleet.Run(runtime::SimulatedWorkloadFactory(home, workload));
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 2026);

  serve::DispatcherOptions options;
  options.default_state = resident.OvernightState();
  serve::Dispatcher dispatcher(fleet, options, nullptr);
  serve::ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  serve::Server server(dispatcher, config, nullptr);

  events::Event event;
  event.date = util::SimTime(480);
  event.device_label = "Hue lamp";
  event.capability = "switch";
  event.attribute = "power";
  event.attribute_value = "on";
  event.command = "on";
  const std::string log_line = event.ToLogLine();

  const LatencyOutcome ping = RunLatencyCase(server, pings, [](int i) {
    return "{\"id\": " + std::to_string(i) + ", \"type\": \"ping\"}";
  });
  const LatencyOutcome suggest =
      RunLatencyCase(server, suggests, [](int i) {
        return "{\"id\": " + std::to_string(i) +
               ", \"type\": \"suggest_action\", \"tenant\": 0, \"minute\": " +
               std::to_string((i * 7) % util::kMinutesPerDay) + "}";
      });
  const int kBatchMinutes = 16;
  const LatencyOutcome batch =
      RunLatencyCase(server, batches, [kBatchMinutes](int i) {
        std::string minutes;
        for (int k = 0; k < kBatchMinutes; ++k) {
          if (!minutes.empty()) minutes += ",";
          minutes += std::to_string((i * kBatchMinutes + k) %
                                    util::kMinutesPerDay);
        }
        return "{\"id\": " + std::to_string(i) +
               ", \"type\": \"suggest_minutes\", \"tenant\": 0, "
               "\"minutes\": [" + minutes + "]}";
      });
  const LatencyOutcome ingest =
      RunLatencyCase(server, ingests, [&log_line](int i) {
        util::JsonArray lines;
        for (int k = 0; k < 4; ++k) lines.emplace_back(log_line);
        util::JsonObject request;
        request["id"] = static_cast<std::int64_t>(i);
        request["type"] = "ingest";
        request["tenant"] = 0;
        request["lines"] = util::JsonValue(std::move(lines));
        return util::JsonValue(std::move(request)).Dump();
      });

  // Overload sweep: one worker parked on a stall + a burst far beyond the
  // queue makes admission arithmetic exact — queue_capacity admitted on
  // top of the stall, everything else explicitly rejected.
  serve::DispatcherOptions sweep_options;
  sweep_options.default_state = resident.OvernightState();
  sweep_options.allow_stall = true;
  serve::Dispatcher sweep_dispatcher(fleet, sweep_options, nullptr);
  serve::ServerConfig sweep_config;
  sweep_config.workers = 1;
  sweep_config.queue_capacity = 4;
  serve::Server sweep_server(sweep_dispatcher, sweep_config, nullptr);

  serve::LoopbackPair pair = serve::MakeLoopbackPair();
  serve::ConnectionStats sweep_stats;
  std::thread serving(
      [&] { sweep_stats = sweep_server.Serve(*pair.server); });
  const auto sweep_begin = std::chrono::steady_clock::now();
  pair.client->WritePayload(R"({"id": 0, "type": "stall"})");
  while (sweep_dispatcher.stalled_now() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int kBurst = 32;
  for (int id = 1; id <= kBurst; ++id) {
    pair.client->WritePayload("{\"id\": " + std::to_string(id) +
                              ", \"type\": \"ping\"}");
  }
  pair.client->CloseWrite();
  sweep_dispatcher.ReleaseStalls();
  serving.join();
  const double sweep_ms = MsSince(sweep_begin);
  pair.server->CloseWrite();

  std::size_t sweep_ok = 0, sweep_overloaded = 0, sweep_answered = 0;
  {
    std::string payload;
    for (;;) {
      const auto result = pair.client->ReadPayload(&payload);
      if (result == serve::FramedTransport::ReadResult::kClosed) break;
      if (result != serve::FramedTransport::ReadResult::kPayload) continue;
      ++sweep_answered;
      const util::JsonValue response = util::JsonValue::Parse(payload);
      if (serve::ResponseOk(response)) {
        ++sweep_ok;
      } else if (response.At("error").AsString() == serve::kErrOverloaded) {
        ++sweep_overloaded;
      }
    }
  }

  std::printf("%-22s %8s %8s %10s %10s %10s\n", "case", "sent", "ok",
              "p50 us", "p99 us", "p99.9 us");
  const auto row = [](const char* name, const LatencyOutcome& outcome) {
    std::printf("%-22s %8zu %8zu %10.1f %10.1f %10.1f\n", name,
                outcome.sent, outcome.ok, outcome.p50_us, outcome.p99_us,
                outcome.p999_us);
  };
  row("ping", ping);
  row("suggest_action", suggest);
  row("suggest_minutes_x16", batch);
  row("ingest_x4", ingest);
  std::printf("overload sweep: burst %d -> accepted %zu, rejected %zu, "
              "answered %zu (%.1f ms)\n",
              kBurst, sweep_stats.accepted, sweep_stats.rejected_overload,
              sweep_answered, sweep_ms);

  util::JsonObject sweep_det;
  sweep_det["burst"] = static_cast<std::int64_t>(kBurst);
  sweep_det["accepted"] = static_cast<std::int64_t>(sweep_stats.accepted);
  sweep_det["rejected_overload"] =
      static_cast<std::int64_t>(sweep_stats.rejected_overload);
  sweep_det["responses_ok"] = static_cast<std::int64_t>(sweep_ok);
  sweep_det["responses_overloaded"] =
      static_cast<std::int64_t>(sweep_overloaded);
  sweep_det["answered"] = static_cast<std::int64_t>(sweep_answered);
  util::JsonObject sweep_adv;
  sweep_adv["sweep_ms"] = sweep_ms;
  util::JsonObject sweep_case;
  sweep_case["name"] = "overload_sweep";
  sweep_case["deterministic"] = util::JsonValue(std::move(sweep_det));
  sweep_case["advisory"] = util::JsonValue(std::move(sweep_adv));

  util::JsonArray cases;
  cases.push_back(LatencyCaseJson("latency_ping", ping));
  cases.push_back(LatencyCaseJson("latency_suggest_action", suggest));
  cases.push_back(LatencyCaseJson("latency_suggest_minutes", batch));
  cases.push_back(LatencyCaseJson("latency_ingest", ingest));
  cases.push_back(util::JsonValue(std::move(sweep_case)));
  util::JsonObject doc;
  doc["bench"] = "serve";
  doc["smoke"] = smoke;
  doc["cases"] = util::JsonValue(std::move(cases));
  std::ofstream out("BENCH_serve.json");
  out << util::JsonValue(std::move(doc)).Dump(2) << "\n";
  std::printf("wrote BENCH_serve.json\n");

  // Every paced request answered ok; the sweep admitted exactly the stall
  // plus a full queue and answered the entire burst one way or the other.
  const bool healthy =
      ping.ok == ping.sent && suggest.ok == suggest.sent &&
      batch.ok == batch.sent && ingest.ok == ingest.sent &&
      sweep_stats.accepted == 1 + sweep_config.queue_capacity &&
      sweep_answered == static_cast<std::size_t>(kBurst) + 1 &&
      sweep_ok == sweep_stats.accepted &&
      sweep_overloaded == sweep_stats.rejected_overload;
  return healthy ? 0 : 1;
}
