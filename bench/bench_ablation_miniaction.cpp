// Ablation: the mini-action factorization of Section V-A-7. The joint
// action space grows exponentially with device count while the mini-action
// head grows linearly; this harness prints both curves for growing homes
// and demonstrates that a joint-action Q-table would be infeasible where
// the mini-action head stays tiny.
#include <cstdio>

#include "bench_common.h"
#include "fsm/device_library.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader("Ablation: mini-action head vs joint action space",
                     "Section V-A-7 (practical deep learning)");

  const auto all_devices = fsm::LargeHomeDevices();

  std::printf("\n%-9s %18s %22s %22s\n", "devices", "mini-action slots",
              "joint actions", "joint states");
  for (std::size_t k = 1; k <= all_devices.size(); ++k) {
    std::vector<fsm::Device> devices(all_devices.begin(),
                                     all_devices.begin() +
                                         static_cast<std::ptrdiff_t>(k));
    const fsm::StateCodec codec(devices);
    long double joint_actions = 1.0L;
    for (const auto& device : devices) {
      joint_actions *= static_cast<long double>(device.action_count() + 1);
    }
    std::printf("%-9zu %18zu %22.0Lf %22llu\n", k, codec.mini_action_count(),
                joint_actions,
                static_cast<unsigned long long>(codec.state_space_size()));
  }

  // Memory estimate for one Q output layer (64 hidden units, doubles).
  const fsm::StateCodec codec(all_devices);
  long double joint_actions = 1.0L;
  for (const auto& device : all_devices) {
    joint_actions *= static_cast<long double>(device.action_count() + 1);
  }
  const double mini_params =
      64.0 * static_cast<double>(codec.mini_action_count()) * 8.0;
  const long double joint_params = 64.0L * joint_actions * 8.0L;
  std::printf("\nOutput-layer parameters at 64 hidden units: mini-action "
              "head %.1f KiB vs joint head %.1Lf GiB.\n",
              mini_params / 1024.0,
              joint_params / 1024.0L / 1024.0L / 1024.0L);
  std::printf("The factorization is what makes the DQN head tractable "
              "(linear growth), exactly as Section V-A-7 argues.\n");
  return 0;
}
