// Fig. 9: unconstrained vs constrained exploration benefit space —
// per-episode cumulative reward and safety violations for both agents on
// the same day. The paper reports higher raw reward for unconstrained
// exploration at an average of ~32 safety violations per episode; the
// constrained agent commits zero.
#include <cstdio>

#include "bench_common.h"
#include "core/benefit_space.h"
#include "util/stats.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader(
      "Fig. 9: unconstrained vs constrained exploration benefit space",
      "Fig. 9 (Section VI-F, ~32 violations/episode unconstrained)");

  bench::Harness harness;
  const sim::DayTrace day = harness.testbed.home_b_data().Day(42);

  core::ExplorationConfig exploration;
  exploration.episodes = bench::TrainEpisodes();
  const auto points = core::ExplorationComparison(
      harness.testbed.home_a(), harness.jarvis->learner(), day,
      bench::Harness::MakeJarvisConfig(), exploration);

  std::printf("\n%-8s %22s %22s %24s\n", "episode", "constrained reward",
              "unconstrained reward", "unconstrained violations");
  // Early episodes are exploration noise; the benefit-space comparison is
  // about the converged regime, so the headline statistics use the final
  // quarter of training.
  const std::size_t tail_start = points.size() - points.size() / 4;
  util::OnlineStats constrained_reward, unconstrained_reward, violation_stats;
  for (const auto& point : points) {
    if (static_cast<std::size_t>(point.episode) >= tail_start) {
      constrained_reward.Add(point.constrained_reward);
      unconstrained_reward.Add(point.unconstrained_reward);
      violation_stats.Add(static_cast<double>(point.unconstrained_violations));
    }
    std::printf("%-8d %22.1f %22.1f %24zu\n", point.episode,
                point.constrained_reward, point.unconstrained_reward,
                point.unconstrained_violations);
    if (point.constrained_violations != 0) {
      std::printf("ERROR: constrained agent committed violations!\n");
      return 1;
    }
  }

  std::printf("\nConverged regime (final quarter of episodes):\n");
  std::printf("  mean reward: constrained %.1f, unconstrained %.1f "
              "(unsafe benefit space: %+.1f)\n",
              constrained_reward.mean(), unconstrained_reward.mean(),
              unconstrained_reward.mean() - constrained_reward.mean());
  std::printf("  unconstrained violations/episode: mean %.1f (paper: ~32); "
              "constrained: 0 in every episode.\n",
              violation_stats.mean());
  return 0;
}
