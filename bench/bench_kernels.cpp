// Hot-path kernel throughput: old-vs-new A/B for the DQN forward pass,
// the training step, and the replay-batch hot loop (DESIGN.md §12).
//
// "Old" is the pre-optimization code shape, faithfully replicated by
// neural::testing::ReferenceModel plus a textbook Adam step: naive
// At()-indexed matrix loops, std::function activation maps, a fresh tensor
// for every intermediate, and a per-row PredictOne for the replay
// bootstrap. "New" is the production path: restructured contiguous-loop
// kernels, reusable scratch tensors (zero steady-state allocations), a
// statically dispatched activation switch, and one batched bootstrap
// forward per replay. The two paths produce bit-identical numbers
// (tests/neural_kernels_test.cpp pins this), so the A/B isolates pure
// kernel and allocation cost.
//
// Writes BENCH_kernels.json; tools/check_bench.py gates CI on the speedup
// column against the committed baseline (bench/baselines/). Pass --smoke
// for the CI-sized run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "fsm/device_library.h"
#include "neural/network.h"
#include "neural/testing/reference_kernels.h"
#include "rl/dqn_agent.h"
#include "rl/replay.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace jarvis;
using neural::Tensor;
using neural::testing::ReferenceLayer;
using neural::testing::ReferenceModel;

constexpr std::size_t kFeatureWidth = 32;
constexpr std::size_t kBatch = 32;
constexpr std::size_t kBufferFill = 2048;

template <typename F>
double MeasureSeconds(int iters, F&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct AbSeconds {
  double old_s = 0.0;
  double new_s = 0.0;
};

// Interleaves the two paths across `rounds` alternating windows and keeps
// the best (minimum) window per path: CPU-frequency drift or a preempting
// neighbor then biases both paths alike instead of whichever ran second.
template <typename FNew, typename FOld>
AbSeconds MeasureAb(int rounds, int iters, FNew&& run_new, FOld&& run_old) {
  MeasureSeconds(iters / 4 + 1, run_new);  // warmup
  MeasureSeconds(iters / 4 + 1, run_old);
  AbSeconds best{1e300, 1e300};
  for (int r = 0; r < rounds; ++r) {
    best.new_s = std::min(best.new_s, MeasureSeconds(iters, run_new));
    best.old_s = std::min(best.old_s, MeasureSeconds(iters, run_old));
  }
  return best;
}

Tensor RandomTensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  return Tensor::Generate(rows, cols,
                          [&] { return rng.NextUniform(-1.0, 1.0); });
}

// The DQN shape: two ReLU hidden layers, linear Q-head.
neural::Network MakeDqnShapedNetwork(std::size_t inputs, std::size_t outputs,
                                     std::uint64_t seed) {
  return neural::Network(
      inputs,
      {{64, neural::Activation::kRelu},
       {64, neural::Activation::kRelu},
       {outputs, neural::Activation::kIdentity}},
      neural::Loss::kMeanSquaredError, std::make_unique<neural::Sgd>(0.001),
      util::Rng(seed));
}

// ---------------------------------------------------------------------------
// Old-path replay replication: the pre-PR DqnAgent::Replay body on top of
// the pre-PR kernel shapes.

// Textbook Adam on the reference layers — the formula is unchanged by the
// kernel overhaul, so the old path pairs old kernels with the same update.
struct OldAdam {
  double lr = 0.001, beta1 = 0.9, beta2 = 0.999, epsilon = 1e-8;
  long step_count = 0;
  std::vector<Tensor> mw, vw, mb, vb;

  void Step(std::vector<ReferenceLayer>& layers) {
    if (mw.size() != layers.size()) {
      mw.clear();
      vw.clear();
      mb.clear();
      vb.clear();
      for (const auto& layer : layers) {
        mw.emplace_back(layer.weights.rows(), layer.weights.cols());
        vw.emplace_back(layer.weights.rows(), layer.weights.cols());
        mb.emplace_back(1, layer.biases.cols());
        vb.emplace_back(1, layer.biases.cols());
      }
    }
    ++step_count;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step_count));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step_count));
    auto apply = [&](Tensor& param, const Tensor& grad, Tensor& m, Tensor& v) {
      auto& m_data = m.mutable_data();
      auto& v_data = v.mutable_data();
      auto& p_data = param.mutable_data();
      const auto& g_data = grad.data();
      for (std::size_t i = 0; i < p_data.size(); ++i) {
        m_data[i] = beta1 * m_data[i] + (1.0 - beta1) * g_data[i];
        v_data[i] = beta2 * v_data[i] + (1.0 - beta2) * g_data[i] * g_data[i];
        const double m_hat = m_data[i] / bc1;
        const double v_hat = v_data[i] / bc2;
        p_data[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon);
      }
    };
    for (std::size_t i = 0; i < layers.size(); ++i) {
      apply(layers[i].weights, layers[i].grad_weights, mw[i], vw[i]);
      apply(layers[i].biases, layers[i].grad_biases, mb[i], vb[i]);
    }
  }
};

struct OldReplayAgent {
  const fsm::StateCodec& codec;
  ReferenceModel model;
  OldAdam optimizer;
  std::vector<rl::Experience> buffer;
  util::Rng rng;
  double gamma = 0.97;

  double Replay() {
    // Pre-PR shape: raw pointers into the buffer, fresh tensors for every
    // batch, and one allocating PredictOne per non-terminal row.
    std::vector<const rl::Experience*> batch;
    batch.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(&buffer[rng.NextIndex(buffer.size())]);
    }
    const std::size_t outputs = codec.mini_action_count();
    Tensor inputs(batch.size(), batch[0]->features.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      inputs.SetRow(i, batch[i]->features);
    }
    Tensor targets = model.Predict(inputs);
    Tensor mask(batch.size(), outputs, 0.0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const rl::Experience& exp = *batch[i];
      std::vector<double> next_q;
      if (!exp.done) {
        next_q = model.Predict(Tensor::Row(exp.next_features)).RowVector(0);
      }
      for (std::size_t slot : exp.taken_slots) {
        double future = 0.0;
        if (!exp.done) {
          const auto device = codec.SlotToMiniAction(slot).device;
          const std::size_t noop = codec.NoOpSlot(device);
          std::size_t range_begin = noop;
          while (range_begin > 0 &&
                 codec.SlotToMiniAction(range_begin - 1).device == device) {
            --range_begin;
          }
          double best = -std::numeric_limits<double>::infinity();
          for (std::size_t s = range_begin; s <= noop; ++s) {
            if (exp.next_mask[s] && next_q[s] > best) best = next_q[s];
          }
          if (best > -std::numeric_limits<double>::infinity()) future = best;
        }
        targets.At(i, slot) = exp.reward + gamma * future;
        mask.At(i, slot) = 1.0;
      }
    }
    // Forward/backward through the reference layers, textbook Adam step.
    Tensor prediction = inputs;
    for (auto& layer : model.layers) prediction = layer.Forward(prediction);
    const double loss = MaskedMseLoss(prediction, targets, mask);
    Tensor grad = MaskedMseGradient(prediction, targets, mask);
    for (auto it = model.layers.rbegin(); it != model.layers.rend(); ++it) {
      grad = it->Backward(grad);
    }
    optimizer.Step(model.layers);
    return loss;
  }
};

rl::Experience MakeExperience(const fsm::StateCodec& codec, util::Rng& rng,
                              bool done) {
  rl::Experience exp;
  exp.features.resize(kFeatureWidth);
  for (double& x : exp.features) x = rng.NextUniform(-1.0, 1.0);
  for (std::size_t d = 0; d < codec.device_count(); ++d) {
    exp.taken_slots.push_back(codec.NoOpSlot(static_cast<fsm::DeviceId>(d)));
  }
  exp.reward = rng.NextUniform(-1.0, 1.0);
  exp.next_features.resize(kFeatureWidth);
  for (double& x : exp.next_features) x = rng.NextUniform(-1.0, 1.0);
  exp.next_mask.assign(codec.mini_action_count(), true);
  exp.done = done;
  return exp;
}

struct CaseResult {
  std::string name;
  std::string unit;
  double old_per_sec = 0.0;
  double new_per_sec = 0.0;
  double speedup() const {
    return old_per_sec > 0.0 ? new_per_sec / old_per_sec : 0.0;
  }
};

void PrintCase(const CaseResult& result) {
  std::printf("%-12s %14.0f %14.0f %8.2fx  (%s)\n", result.name.c_str(),
              result.old_per_sec, result.new_per_sec, result.speedup(),
              result.unit.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int scale = smoke ? 1 : 10;

  std::printf("Kernel hot-loop throughput: old (naive kernels, allocating) "
              "vs new (scratch + contiguous loops)\n");
  std::printf("mode: %s\n", smoke ? "smoke" : "full");
  std::printf("%-12s %14s %14s %9s\n", "case", "old/sec", "new/sec",
              "speedup");

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const fsm::StateCodec& codec = home.codec();
  const std::size_t outputs = codec.mini_action_count();
  std::vector<CaseResult> cases;

  // --- Forward pass, batch sweep -----------------------------------------
  {
    const neural::Network network =
        MakeDqnShapedNetwork(kFeatureWidth, outputs, 71);
    const ReferenceModel reference =
        ReferenceModel::FromNetwork(network, 0.001);
    util::Rng rng(72);
    for (const std::size_t batch : {1u, 8u, 32u, 128u}) {
      const Tensor input = RandomTensor(batch, kFeatureWidth, rng);
      // Sanity: the two paths agree bit-for-bit before we time them.
      const Tensor check_new = network.Predict(input);
      const Tensor check_old = reference.Predict(input);
      if (check_new.data() != check_old.data()) {
        std::printf("FATAL: forward parity mismatch at batch %zu\n", batch);
        return 1;
      }
      const int iters =
          scale * static_cast<int>(std::max<std::size_t>(8, 512 / batch));
      const AbSeconds t =
          MeasureAb(7, iters, [&] { network.PredictScratch(input); },
                    [&] { reference.Predict(input); });
      CaseResult result;
      result.name = "forward_b" + std::to_string(batch);
      result.unit = "rows/sec";
      result.old_per_sec = iters * static_cast<double>(batch) / t.old_s;
      result.new_per_sec = iters * static_cast<double>(batch) / t.new_s;
      PrintCase(result);
      cases.push_back(result);
    }
  }

  // --- Training step, batch 32 -------------------------------------------
  {
    neural::Network network = MakeDqnShapedNetwork(kFeatureWidth, outputs, 73);
    ReferenceModel reference = ReferenceModel::FromNetwork(network, 0.001);
    util::Rng rng(74);
    const Tensor input = RandomTensor(kBatch, kFeatureWidth, rng);
    const Tensor target = RandomTensor(kBatch, outputs, rng);
    const int iters = scale * 20;
    const AbSeconds t =
        MeasureAb(7, iters, [&] { network.TrainBatch(input, target); },
                  [&] { reference.TrainBatch(input, target); });
    CaseResult result;
    result.name = "train_b" + std::to_string(kBatch);
    result.unit = "rows/sec";
    result.old_per_sec = iters * static_cast<double>(kBatch) / t.old_s;
    result.new_per_sec = iters * static_cast<double>(kBatch) / t.new_s;
    PrintCase(result);
    cases.push_back(result);
  }

  // --- Replay hot loop, batch 32 -----------------------------------------
  {
    rl::DqnConfig config;
    config.hidden_units = {64, 64};
    config.batch_size = kBatch;
    config.replay_capacity = kBufferFill;
    config.seed = 75;
    rl::DqnAgent agent(kFeatureWidth, codec, config);
    OldReplayAgent old_agent{codec,
                             ReferenceModel::FromNetwork(agent.network(),
                                                         0.001),
                             OldAdam{}, {}, util::Rng(76)};
    util::Rng fill_rng(77);
    for (std::size_t i = 0; i < kBufferFill; ++i) {
      rl::Experience exp = MakeExperience(codec, fill_rng, i % 8 == 0);
      old_agent.buffer.push_back(exp);
      agent.Remember(std::move(exp));
    }
    const int iters = scale * 15;
    const AbSeconds t = MeasureAb(7, iters, [&] { agent.Replay(); },
                                  [&] { old_agent.Replay(); });
    CaseResult result;
    result.name = "replay_b" + std::to_string(kBatch);
    result.unit = "replays/sec";
    result.old_per_sec = iters / t.old_s;
    result.new_per_sec = iters / t.new_s;
    PrintCase(result);
    cases.push_back(result);
  }

  // --- JSON ---------------------------------------------------------------
  util::JsonArray case_array;
  for (const auto& result : cases) {
    util::JsonObject entry;
    entry["name"] = result.name;
    entry["unit"] = result.unit;
    entry["old_per_sec"] = result.old_per_sec;
    entry["new_per_sec"] = result.new_per_sec;
    entry["speedup"] = result.speedup();
    case_array.push_back(util::JsonValue(std::move(entry)));
  }
  util::JsonObject doc;
  doc["bench"] = "kernels";
  doc["smoke"] = smoke;
  doc["cases"] = util::JsonValue(std::move(case_array));
  std::ofstream out("BENCH_kernels.json");
  out << util::JsonValue(std::move(doc)).Dump(2) << "\n";
  std::printf("wrote BENCH_kernels.json (%zu cases)\n", cases.size());
  return 0;
}
