// Fig. 5: ROC curve for the SPL's ANN benign-anomaly filter, plus the
// headline accuracy/false-positive numbers of Sections VI-B/VI-C: the
// paper reports 99.2% of benign anomalous episodes correctly classified
// (0.8% false positives).
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader("Fig. 5: ROC of the benign-anomaly filter",
                     "Fig. 5 + Section VI-C (99.2% filtered, 0.8% FP)");

  bench::Harness harness;
  const auto& home = harness.testbed.home_a();
  const auto& learner = harness.jarvis->learner();

  // Positives: benign anomalous transitions injected after the learning
  // phase (the paper's 18,120 benign anomalous episodes). Negatives: the
  // crafted malicious transitions.
  sim::AnomalyGenerator anomalies(home, 4242);
  fsm::StateVector home_context(home.device_count(), 0);
  home_context[0] = *home.device(0).FindState("unlocked");

  std::vector<double> scores;
  std::vector<bool> labels;

  const int benign_count = bench::BenignEpisodes();
  int filtered = 0;
  for (int i = 0; i < benign_count; ++i) {
    const auto instance = anomalies.Generate(home_context);
    const fsm::TriggerAction ta{home_context, instance.action,
                                instance.minute};
    scores.push_back(learner.BenignScore(ta));
    labels.push_back(true);
    if (learner.Classify(home_context, instance.action, instance.minute) !=
        spl::Verdict::kViolation) {
      ++filtered;
    }
  }

  const auto violations = harness.testbed.BuildViolations();
  for (const auto& violation : violations) {
    scores.push_back(learner.BenignScore(
        {violation.state, violation.action, violation.minute}));
    labels.push_back(false);
  }

  const auto curve = util::RocCurve(scores, labels);
  const double auc = util::RocAuc(curve);

  std::printf("\nROC points (threshold, FPR, TPR):\n");
  const std::size_t stride = std::max<std::size_t>(1, curve.size() / 20);
  for (std::size_t i = 0; i < curve.size(); i += stride) {
    std::printf("  %8.4f  %6.4f  %6.4f\n", curve[i].threshold,
                curve[i].false_positive_rate, curve[i].true_positive_rate);
  }
  std::printf("  %8.4f  %6.4f  %6.4f\n", curve.back().threshold,
              curve.back().false_positive_rate,
              curve.back().true_positive_rate);

  const double filter_rate =
      static_cast<double>(filtered) / static_cast<double>(benign_count);
  std::printf("\nAUC: %.4f\n", auc);
  std::printf("Benign anomalous episodes correctly filtered: %.2f%% "
              "(paper: 99.2%%)\n",
              filter_rate * 100.0);
  std::printf("False positives (benign flagged as violations): %.2f%% "
              "(paper: 0.8%%)\n",
              (1.0 - filter_rate) * 100.0);
  return 0;
}
