// Ablations of the safety-policy learner's design choices (DESIGN.md §5):
//   1. Key mode — the paper's exact P_safe[S, S'] vs our factored-context
//      keys: detection stays perfect either way, but exact keys flood
//      fresh benign days with false positives.
//   2. ANN filter on/off — without the filter, benign anomalies are all
//      flagged as violations.
//   3. Thresh_env sweep — higher thresholds shrink the whitelist (safety
//      coverage trade-off).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader("Ablation: SPL key mode, ANN filter, Thresh_env",
                     "design choices of Sections IV-A / V-A-3");

  bench::Harness harness;
  const auto& home = harness.testbed.home_a();
  const auto episodes = harness.testbed.HomeALearningEpisodes();
  const auto labeled = harness.testbed.BuildTrainingSet();
  const auto violations = harness.testbed.BuildViolations();

  // A fresh benign day, unseen during learning.
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 909);
  const auto generator = harness.testbed.home_a_generator();
  const auto benign_day = resident.SimulateDay(generator.Generate(33),
                                               resident.OvernightState(),
                                               21.0);
  sim::AnomalyGenerator anomalies(home, 909);
  fsm::StateVector home_context(home.device_count(), 0);
  home_context[0] = *home.device(0).FindState("unlocked");

  struct Variant {
    const char* name;
    spl::SplConfig config;
  };
  std::vector<Variant> variants;
  {
    spl::SplConfig factored;
    variants.push_back({"factored-context (default)", factored});
    spl::SplConfig exact;
    exact.key_mode = spl::KeyMode::kExactState;
    variants.push_back({"exact-state (paper literal)", exact});
    spl::SplConfig no_ann;
    no_ann.use_ann_filter = false;
    variants.push_back({"factored, ANN filter off", no_ann});
    spl::SplConfig thresh2;
    thresh2.count_threshold = 2;
    variants.push_back({"factored, Thresh_env = 2", thresh2});
    spl::SplConfig thresh5;
    thresh5.count_threshold = 5;
    variants.push_back({"factored, Thresh_env = 5", thresh5});
  }

  std::printf("\n%-30s %9s %11s %14s %13s\n", "variant", "admitted",
              "detection", "benign-day FP", "anomaly FP");
  for (const auto& variant : variants) {
    spl::SafetyPolicyLearner learner(home, variant.config);
    learner.Learn(episodes, variant.config.use_ann_filter
                                ? labeled
                                : std::vector<sim::LabeledSample>{});

    int detected = 0;
    for (const auto& violation : violations) {
      if (learner.Classify(violation.state, violation.action,
                           violation.minute) == spl::Verdict::kViolation) {
        ++detected;
      }
    }

    const auto audit = learner.AuditEpisode(benign_day.episode);

    int anomaly_fp = 0;
    const int anomaly_trials = 300;
    for (int i = 0; i < anomaly_trials; ++i) {
      const auto instance = anomalies.Generate(home_context);
      if (learner.Classify(home_context, instance.action, instance.minute) ==
          spl::Verdict::kViolation) {
        ++anomaly_fp;
      }
    }

    std::printf("%-30s %9zu %7d/%zu %8zu/%-5zu %9.1f%%\n", variant.name,
                learner.table().admitted_key_count(), detected,
                violations.size(), audit.violations,
                audit.transitions_checked,
                100.0 * anomaly_fp / anomaly_trials);
  }

  std::printf("\nReading: exact-state keys keep perfect detection but flag "
              "benign transitions on fresh days (no generalization); "
              "disabling the ANN flags nearly all benign anomalies "
              "(paper's 0.8%% FP depends on it); higher Thresh_env shrinks "
              "the whitelist and begins flagging rarely-seen benign "
              "behavior.\n");
  return 0;
}
