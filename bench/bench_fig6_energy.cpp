// Fig. 6: energy conservation — normal vs Jarvis-optimized kWh per day
// across the energy-weight sweep.
#include "bench_sweep_common.h"

int main() {
  return jarvis::bench::RunFunctionalitySweep(
      "energy", "kWh", "Fig. 6 (Section VI-D, energy conservation)");
}
