// Durable-state lifecycle bench: what checkpointing buys and what it
// costs. One fleet cold-learns and checkpoints; a second fleet restores
// and warm-starts. The integer outcomes (episodes skipped, violations,
// restore counts, result parity) are a pure function of the fleet seed
// and are gated exactly by tools/check_bench.py against
// bench/baselines/BENCH_lifecycle.json; wall-clock numbers are advisory
// (runners differ). Writes the machine-readable BENCH_lifecycle.json next
// to the human-readable table. Pass --smoke for the CI-sized run (the
// committed baseline is the --smoke shape).
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_common.h"
#include "runtime/fleet.h"
#include "util/json.h"

namespace {

using namespace jarvis;

runtime::FleetConfig MakeConfig(std::size_t tenants, int episodes) {
  runtime::FleetConfig config;
  config.tenants = tenants;
  config.jobs = 1;  // sequential oracle: timing differences are the work
  config.fleet_seed = 2026;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = episodes;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 3;
  return config;
}

runtime::SimulatedWorkloadOptions MakeWorkload() {
  runtime::SimulatedWorkloadOptions options;
  options.learning_days = 2;
  options.benign_anomaly_samples = 200;
  return options;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::size_t SumLearningEpisodes(const runtime::FleetReport& report) {
  std::size_t total = 0;
  for (const auto& tenant : report.tenants) total += tenant.learning_episodes;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t tenants = smoke ? 4 : 8;
  const int episodes = smoke ? 2 : 6;

  bench::PrintHeader(
      "Learned-state lifecycle: checkpoint, crash, restore, warm start",
      "durable-state lifecycle (DESIGN.md §14); not a paper figure");
  std::printf("mode: %s (%zu tenants, %d episodes)\n",
              smoke ? "smoke" : "full", tenants, episodes);

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const auto factory = runtime::SimulatedWorkloadFactory(home, MakeWorkload());
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "jarvis_bench_lifecycle";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Phase 1: cold fleet — full learning phase, then checkpoint everything.
  runtime::Fleet cold_fleet(home, MakeConfig(tenants, episodes));
  auto start = std::chrono::steady_clock::now();
  const runtime::FleetReport cold = cold_fleet.Run(factory);
  const double cold_run_ms = MsSince(start);

  start = std::chrono::steady_clock::now();
  const runtime::FleetCheckpointReport saved =
      cold_fleet.SaveCheckpoints(dir.string());
  const double save_ms = MsSince(start);

  std::uintmax_t checkpoint_bytes = 0;
  for (std::size_t i = 0; i < tenants; ++i) {
    const auto path = runtime::Fleet::TenantCheckpointPath(dir.string(), i);
    if (std::filesystem::exists(path)) {
      checkpoint_bytes += std::filesystem::file_size(path);
    }
  }

  // Phase 2: "crash" — the cold fleet is gone; a fresh fleet restores the
  // checkpoints and warm-starts every tenant (learning phase skipped).
  runtime::Fleet recovered(home, MakeConfig(tenants, episodes));
  start = std::chrono::steady_clock::now();
  const runtime::FleetCheckpointReport restored =
      recovered.RestoreCheckpoints(dir.string());
  const double restore_ms = MsSince(start);

  start = std::chrono::steady_clock::now();
  const runtime::FleetReport warm = recovered.Run(factory);
  const double warm_run_ms = MsSince(start);
  std::filesystem::remove_all(dir);

  std::size_t sections_failed = 0;
  for (const auto& tenant : restored.tenants) {
    sections_failed += tenant.restore.sections_failed;
  }
  // The recovery parity contract: a warm-started tenant's optimized day is
  // bit-identical to the one the uninterrupted pipeline would produce.
  const bool parity = warm.total_energy_kwh == cold.total_energy_kwh &&
                      warm.total_cost_usd == cold.total_cost_usd;

  std::printf("%-28s %12s %12s\n", "", "cold", "warm");
  std::printf("%-28s %12.1f %12.1f\n", "run ms", cold_run_ms, warm_run_ms);
  std::printf("%-28s %12zu %12zu\n", "learning episodes",
              SumLearningEpisodes(cold), SumLearningEpisodes(warm));
  std::printf("%-28s %12zu %12zu\n", "violations",
              cold.total_violations, warm.total_violations);
  std::printf("save: %.1f ms (%zu ok), restore: %.1f ms (%zu ok), "
              "%ju checkpoint bytes, parity %s\n",
              save_ms, saved.succeeded, restore_ms, restored.succeeded,
              checkpoint_bytes, parity ? "ok" : "MISMATCH");

  util::JsonObject deterministic;
  deterministic["tenants"] = static_cast<std::int64_t>(tenants);
  deterministic["cold_completed"] = static_cast<std::int64_t>(cold.completed);
  deterministic["cold_learning_episodes"] =
      static_cast<std::int64_t>(SumLearningEpisodes(cold));
  deterministic["cold_violations"] =
      static_cast<std::int64_t>(cold.total_violations);
  deterministic["checkpoints_saved"] =
      static_cast<std::int64_t>(saved.succeeded);
  deterministic["checkpoints_restored"] =
      static_cast<std::int64_t>(restored.succeeded);
  deterministic["restore_sections_failed"] =
      static_cast<std::int64_t>(sections_failed);
  deterministic["warm_started"] =
      static_cast<std::int64_t>(warm.warm_started);
  deterministic["warm_learning_episodes"] =
      static_cast<std::int64_t>(SumLearningEpisodes(warm));
  deterministic["warm_violations"] =
      static_cast<std::int64_t>(warm.total_violations);
  deterministic["result_parity"] = static_cast<std::int64_t>(parity ? 1 : 0);

  util::JsonObject advisory;
  advisory["cold_run_ms"] = cold_run_ms;
  advisory["warm_run_ms"] = warm_run_ms;
  advisory["save_ms"] = save_ms;
  advisory["restore_ms"] = restore_ms;
  advisory["checkpoint_bytes"] =
      static_cast<std::int64_t>(checkpoint_bytes);

  util::JsonObject kase;
  kase["name"] = "fleet_warm_start";
  kase["deterministic"] = util::JsonValue(std::move(deterministic));
  kase["advisory"] = util::JsonValue(std::move(advisory));
  util::JsonArray cases;
  cases.push_back(util::JsonValue(std::move(kase)));
  util::JsonObject doc;
  doc["bench"] = "lifecycle";
  doc["smoke"] = smoke;
  doc["cases"] = util::JsonValue(std::move(cases));
  std::ofstream out("BENCH_lifecycle.json");
  out << util::JsonValue(std::move(doc)).Dump(2) << "\n";
  std::printf("wrote BENCH_lifecycle.json\n");

  const bool healthy = parity && warm.warm_started == tenants &&
                       warm.total_violations == 0 &&
                       saved.succeeded == tenants &&
                       restored.succeeded == tenants;
  return healthy ? 0 : 1;
}
