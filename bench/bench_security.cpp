// Section VI-B: the security evaluation. Each of the 214 crafted
// violations is engineered into random episodes of natural behavior
// (paper: 100 episodes each, 21,400 malicious episodes total) and played
// against the SPL; the paper reports 100% of malicious state transitions
// flagged.
#include <cstdio>
#include <map>

#include "bench_common.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader("Security evaluation: crafted-violation detection",
                     "Section VI-B (214 violations, 100% detection)");

  bench::Harness harness;
  const auto& home = harness.testbed.home_a();
  const auto violations = harness.testbed.BuildViolations();

  // Base episodes: natural behavior on non-learning days.
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 60001);
  const auto generator = harness.testbed.home_a_generator();
  const int per_violation = bench::EpisodesPerViolation();
  std::vector<fsm::Episode> bases;
  util::Rng rng(77);
  for (int i = 0; i < per_violation; ++i) {
    const int day = static_cast<int>(rng.NextInt(1, 364));
    bases.push_back(resident
                        .SimulateDay(generator.Generate(day),
                                     resident.OvernightState(), 21.0)
                        .episode);
  }

  std::map<sim::ViolationType, std::pair<int, int>> per_type;  // {hit, total}
  int flagged_episodes = 0;
  int total_episodes = 0;
  for (const auto& violation : violations) {
    for (const auto& base : bases) {
      const auto injected =
          sim::AttackGenerator::InjectIntoEpisode(home, base, violation);
      const auto audit = harness.jarvis->Audit(injected);
      ++total_episodes;
      ++per_type[violation.type].second;
      if (audit.violations > 0) {
        ++flagged_episodes;
        ++per_type[violation.type].first;
      }
    }
  }

  std::printf("\n%-42s %10s %10s %9s\n", "Violation type", "episodes",
              "flagged", "rate");
  for (const auto& [type, counts] : per_type) {
    std::printf("%-42s %10d %10d %8.1f%%\n",
                sim::ViolationTypeName(type).c_str(), counts.second,
                counts.first,
                100.0 * counts.first / std::max(1, counts.second));
  }
  std::printf("%-42s %10d %10d %8.1f%%\n", "TOTAL", total_episodes,
              flagged_episodes, 100.0 * flagged_episodes / total_episodes);
  std::printf("\nPaper: 21,400 malicious episodes, 100%% flagged.\n");
  return flagged_episodes == total_episodes ? 0 : 1;
}
