#!/usr/bin/env python3
"""Regression gate for the machine-readable bench JSONs.

Reads a freshly produced bench JSON (file argument or stdin), dispatches
on its `bench` field, and compares it against the committed baseline in
bench/baselines/ (overridable with --baseline):

`bench` == "kernels" (bench/bench_kernels):
  1. Schema: every case carries name / unit / old_per_sec / new_per_sec /
     speedup, throughputs are positive, and the recorded speedup matches
     new_per_sec / old_per_sec.
  2. Gate (FAILS the build): each baseline case must be present, and its
     fresh speedup must be at least GATE_FRACTION (0.75) of the baseline
     speedup. The speedup column is an old-vs-new A/B measured in the same
     process within interleaved windows, so it transfers across machines —
     a drop means the optimized kernels regressed relative to the naive
     reference, not that the runner is slow.
  3. Advisory (warns only): absolute new-path throughput below half the
     baseline. CI runners differ wildly in clock speed and contention, so
     absolute rows/sec never fails the gate.

`bench` == "lifecycle" (bench/bench_lifecycle), `bench` == "serve"
(bench/bench_serve), and `bench` == "fleet" (bench/bench_fleet — the
cross-tenant aggregation sweep: query/answer conservation, exact-parity
verdicts, and the manual-mode flush arithmetic) share one deterministic
shape:
  1. Schema: every case carries name plus a `deterministic` object (int
     outcomes — lifecycle: episodes skipped by warm start, violations,
     checkpoint save/restore counts, result parity; serve: request /
     response / rejection / malformed-frame counts) and an `advisory`
     object (wall-clock milliseconds, latency percentiles, bytes).
  2. Gate (FAILS the build): each baseline case must be present and its
     `deterministic` object must match the baseline EXACTLY, key for key.
     These outcomes are a pure function of the seed and the admission
     arithmetic; any drift means semantics changed, not that the runner
     is slow.
  3. Advisory (warns only): any `advisory` value more than double its
     baseline. Latency never fails the gate.

Exit status 0 when the gate passes; 1 with a readable report otherwise.
Wired into CI right after the `bench_kernels --smoke`,
`bench_lifecycle --smoke`, `bench_serve --smoke`, and
`bench_fleet --smoke` runs.
"""

import json
import sys

GATE_FRACTION = 0.75
ABSOLUTE_WARN_FRACTION = 0.5
ADVISORY_WARN_FACTOR = 2.0

DEFAULT_BASELINES = {
    "kernels": "bench/baselines/BENCH_kernels.json",
    "lifecycle": "bench/baselines/BENCH_lifecycle.json",
    "serve": "bench/baselines/BENCH_serve.json",
    "fleet": "bench/baselines/BENCH_fleet.json",
}

# Bench kinds gated on exact deterministic outcomes (vs the kernels
# speedup-ratio gate). All share the deterministic/advisory case shape.
DETERMINISTIC_KINDS = frozenset({"lifecycle", "serve", "fleet"})

# Cases that must exist in BOTH the fresh results and the baseline. The
# exact-match gate only covers cases the baseline already names, so a
# case silently dropped from both files would pass unnoticed; pinning the
# load-bearing ones here makes that a hard failure.
REQUIRED_CASES = {
    "fleet": frozenset({"republish_staleness"}),
}

CASE_FIELDS = {
    "name": str,
    "unit": str,
    "old_per_sec": (int, float),
    "new_per_sec": (int, float),
    "speedup": (int, float),
}


def fail(errors):
    for error in errors:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
    return 1


def load(path):
    if path == "-":
        return json.load(sys.stdin)
    with open(path) as handle:
        return json.load(handle)


def validate_schema(doc, label, errors, kind="kernels"):
    if doc.get("bench") != kind:
        errors.append(f"{label}: bench != {kind!r}")
        return {}
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append(f"{label}: missing or empty 'cases'")
        return {}
    by_name = {}
    for case in cases:
        for field, types in CASE_FIELDS.items():
            if not isinstance(case.get(field), types):
                errors.append(f"{label}: case {case.get('name')!r}: bad "
                              f"field {field!r}: {case.get(field)!r}")
                break
        else:
            name = case["name"]
            if name in by_name:
                errors.append(f"{label}: duplicate case {name!r}")
                continue
            if case["old_per_sec"] <= 0 or case["new_per_sec"] <= 0:
                errors.append(f"{label}: case {name!r}: non-positive "
                              "throughput")
                continue
            implied = case["new_per_sec"] / case["old_per_sec"]
            if abs(implied - case["speedup"]) > 1e-6 * max(implied, 1.0):
                errors.append(f"{label}: case {name!r}: speedup "
                              f"{case['speedup']:.4f} != new/old "
                              f"{implied:.4f}")
                continue
            by_name[name] = case
    return by_name


def validate_deterministic_schema(doc, label, errors, kind):
    if doc.get("bench") != kind:
        errors.append(f"{label}: bench != {kind!r}")
        return {}
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append(f"{label}: missing or empty 'cases'")
        return {}
    by_name = {}
    for case in cases:
        name = case.get("name")
        if not isinstance(name, str):
            errors.append(f"{label}: case without a string name: {case!r}")
            continue
        if name in by_name:
            errors.append(f"{label}: duplicate case {name!r}")
            continue
        deterministic = case.get("deterministic")
        advisory = case.get("advisory")
        if not isinstance(deterministic, dict) or not deterministic:
            errors.append(f"{label}: case {name!r}: missing 'deterministic'")
            continue
        if not all(isinstance(v, int) and not isinstance(v, bool)
                   for v in deterministic.values()):
            errors.append(f"{label}: case {name!r}: non-integer "
                          "deterministic value")
            continue
        if not isinstance(advisory, dict):
            errors.append(f"{label}: case {name!r}: missing 'advisory'")
            continue
        if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in advisory.values()):
            errors.append(f"{label}: case {name!r}: non-numeric advisory "
                          "value")
            continue
        by_name[name] = case
    return by_name


def gate_deterministic(fresh, baseline, errors):
    for name, base_case in sorted(baseline.items()):
        fresh_case = fresh.get(name)
        if fresh_case is None:
            errors.append(f"case {name!r} present in baseline but missing "
                          "from fresh results")
            continue
        base_det = base_case["deterministic"]
        fresh_det = fresh_case["deterministic"]
        drift = sorted(set(base_det) | set(fresh_det))
        clean = True
        for key in drift:
            if base_det.get(key) != fresh_det.get(key):
                clean = False
                errors.append(
                    f"case {name!r}: deterministic field {key!r} drifted: "
                    f"baseline {base_det.get(key)!r} != fresh "
                    f"{fresh_det.get(key)!r} (these outcomes are a pure "
                    "function of the seed — this is a behavior change)")
        print(f"check_bench: {name}: {len(base_det)} deterministic fields "
              f"{'match baseline exactly' if clean else 'DRIFTED'}")
        for key, base_value in sorted(base_case["advisory"].items()):
            fresh_value = fresh_case["advisory"].get(key)
            if (isinstance(fresh_value, (int, float)) and base_value > 0
                    and fresh_value > ADVISORY_WARN_FACTOR * base_value):
                print(f"check_bench: WARN: {name}: advisory {key} = "
                      f"{fresh_value:.1f} is more than "
                      f"{ADVISORY_WARN_FACTOR:.0f}x the baseline "
                      f"{base_value:.1f} (advisory only: runners differ)",
                      file=sys.stderr)


def gate_kernels(fresh, baseline, errors):
    for name, base_case in sorted(baseline.items()):
        fresh_case = fresh.get(name)
        if fresh_case is None:
            errors.append(f"case {name!r} present in baseline but missing "
                          "from fresh results")
            continue
        floor = base_case["speedup"] * GATE_FRACTION
        status = "ok" if fresh_case["speedup"] >= floor else "REGRESSED"
        print(f"check_bench: {name}: speedup {fresh_case['speedup']:.2f}x "
              f"(baseline {base_case['speedup']:.2f}x, floor {floor:.2f}x) "
              f"{status}")
        if fresh_case["speedup"] < floor:
            errors.append(
                f"case {name!r}: speedup {fresh_case['speedup']:.2f}x fell "
                f"below {GATE_FRACTION:.0%} of baseline "
                f"{base_case['speedup']:.2f}x")
        if (fresh_case["new_per_sec"]
                < ABSOLUTE_WARN_FRACTION * base_case["new_per_sec"]):
            print(f"check_bench: WARN: {name}: absolute throughput "
                  f"{fresh_case['new_per_sec']:.0f}/sec is below half the "
                  f"baseline {base_case['new_per_sec']:.0f}/sec "
                  "(advisory only: runners differ)", file=sys.stderr)


def main(argv):
    fresh_path = "-"
    baseline_path = None
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--baseline":
            if not args:
                return fail(["--baseline needs a path"])
            baseline_path = args.pop(0)
        else:
            fresh_path = arg

    errors = []
    try:
        fresh_doc = load(fresh_path)
    except (OSError, json.JSONDecodeError) as err:
        return fail([f"cannot read fresh results {fresh_path!r}: {err}"])
    kind = fresh_doc.get("bench")
    if kind not in DEFAULT_BASELINES:
        return fail([f"fresh: unknown bench kind {kind!r} (expected one of "
                     f"{sorted(DEFAULT_BASELINES)})"])
    if baseline_path is None:
        baseline_path = DEFAULT_BASELINES[kind]
    try:
        baseline_doc = load(baseline_path)
    except (OSError, json.JSONDecodeError) as err:
        return fail([f"cannot read baseline {baseline_path!r}: {err}"])

    if kind in DETERMINISTIC_KINDS:
        fresh = validate_deterministic_schema(fresh_doc, "fresh", errors,
                                              kind)
        baseline = validate_deterministic_schema(baseline_doc, "baseline",
                                                 errors, kind)
    else:
        fresh = validate_schema(fresh_doc, "fresh", errors)
        baseline = validate_schema(baseline_doc, "baseline", errors)
    for required in sorted(REQUIRED_CASES.get(kind, ())):
        for label, cases in (("fresh", fresh), ("baseline", baseline)):
            if required not in cases:
                errors.append(f"{label}: required {kind} case {required!r} "
                              "is missing")
    if errors:
        return fail(errors)

    if kind in DETERMINISTIC_KINDS:
        gate_deterministic(fresh, baseline, errors)
    else:
        gate_kernels(fresh, baseline, errors)

    if errors:
        return fail(errors)
    print(f"check_bench: OK ({len(baseline)} {kind} cases gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
