#!/usr/bin/env python3
"""Perf-regression gate for BENCH_kernels.json (bench/bench_kernels).

Reads a freshly produced BENCH_kernels.json (file argument or stdin) and
compares it against the committed baseline
(bench/baselines/BENCH_kernels.json by default):

  1. Schema: `bench` == "kernels", every case carries name / unit /
     old_per_sec / new_per_sec / speedup, throughputs are positive, and
     the recorded speedup matches new_per_sec / old_per_sec.
  2. Gate (FAILS the build): each baseline case must be present, and its
     fresh speedup must be at least GATE_FRACTION (0.75) of the baseline
     speedup. The speedup column is an old-vs-new A/B measured in the same
     process within interleaved windows, so it transfers across machines —
     a drop means the optimized kernels regressed relative to the naive
     reference, not that the runner is slow.
  3. Advisory (warns only): absolute new-path throughput below half the
     baseline. CI runners differ wildly in clock speed and contention, so
     absolute rows/sec never fails the gate.

Exit status 0 when the gate passes; 1 with a readable report otherwise.
Wired into CI right after the `bench_kernels --smoke` run.
"""

import json
import sys

GATE_FRACTION = 0.75
ABSOLUTE_WARN_FRACTION = 0.5

CASE_FIELDS = {
    "name": str,
    "unit": str,
    "old_per_sec": (int, float),
    "new_per_sec": (int, float),
    "speedup": (int, float),
}


def fail(errors):
    for error in errors:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
    return 1


def load(path):
    if path == "-":
        return json.load(sys.stdin)
    with open(path) as handle:
        return json.load(handle)


def validate_schema(doc, label, errors):
    if doc.get("bench") != "kernels":
        errors.append(f"{label}: bench != 'kernels'")
        return {}
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append(f"{label}: missing or empty 'cases'")
        return {}
    by_name = {}
    for case in cases:
        for field, types in CASE_FIELDS.items():
            if not isinstance(case.get(field), types):
                errors.append(f"{label}: case {case.get('name')!r}: bad "
                              f"field {field!r}: {case.get(field)!r}")
                break
        else:
            name = case["name"]
            if name in by_name:
                errors.append(f"{label}: duplicate case {name!r}")
                continue
            if case["old_per_sec"] <= 0 or case["new_per_sec"] <= 0:
                errors.append(f"{label}: case {name!r}: non-positive "
                              "throughput")
                continue
            implied = case["new_per_sec"] / case["old_per_sec"]
            if abs(implied - case["speedup"]) > 1e-6 * max(implied, 1.0):
                errors.append(f"{label}: case {name!r}: speedup "
                              f"{case['speedup']:.4f} != new/old "
                              f"{implied:.4f}")
                continue
            by_name[name] = case
    return by_name


def main(argv):
    fresh_path = "-"
    baseline_path = "bench/baselines/BENCH_kernels.json"
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--baseline":
            if not args:
                return fail(["--baseline needs a path"])
            baseline_path = args.pop(0)
        else:
            fresh_path = arg

    errors = []
    try:
        fresh_doc = load(fresh_path)
    except (OSError, json.JSONDecodeError) as err:
        return fail([f"cannot read fresh results {fresh_path!r}: {err}"])
    try:
        baseline_doc = load(baseline_path)
    except (OSError, json.JSONDecodeError) as err:
        return fail([f"cannot read baseline {baseline_path!r}: {err}"])

    fresh = validate_schema(fresh_doc, "fresh", errors)
    baseline = validate_schema(baseline_doc, "baseline", errors)
    if errors:
        return fail(errors)

    for name, base_case in sorted(baseline.items()):
        fresh_case = fresh.get(name)
        if fresh_case is None:
            errors.append(f"case {name!r} present in baseline but missing "
                          "from fresh results")
            continue
        floor = base_case["speedup"] * GATE_FRACTION
        status = "ok" if fresh_case["speedup"] >= floor else "REGRESSED"
        print(f"check_bench: {name}: speedup {fresh_case['speedup']:.2f}x "
              f"(baseline {base_case['speedup']:.2f}x, floor {floor:.2f}x) "
              f"{status}")
        if fresh_case["speedup"] < floor:
            errors.append(
                f"case {name!r}: speedup {fresh_case['speedup']:.2f}x fell "
                f"below {GATE_FRACTION:.0%} of baseline "
                f"{base_case['speedup']:.2f}x")
        if (fresh_case["new_per_sec"]
                < ABSOLUTE_WARN_FRACTION * base_case["new_per_sec"]):
            print(f"check_bench: WARN: {name}: absolute throughput "
                  f"{fresh_case['new_per_sec']:.0f}/sec is below half the "
                  f"baseline {base_case['new_per_sec']:.0f}/sec "
                  "(advisory only: runners differ)", file=sys.stderr)

    if errors:
        return fail(errors)
    print(f"check_bench: OK ({len(baseline)} cases gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
