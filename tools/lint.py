#!/usr/bin/env python3
"""Repo-specific lint gate for Jarvis (registered as the `repo_lint` ctest).

Enforced invariants (see DESIGN.md "Correctness tooling"):

  1. Every header starts with `#pragma once` (first preprocessor directive).
  2. Every header is self-contained: it compiles standalone with
     `$CXX -fsyntax-only` and the project include paths.
  3. No `using namespace` at any scope inside headers.
  4. Randomness goes through util/rng: no `rand()`, `srand()`, or
     `std::random_device` anywhere outside src/util/rng.* (deterministic
     replay of episodes is part of the safety story).
  5. No <iostream> in src/ — the library must not drag streams into hot
     paths or emit stray output; CLIs under examples/ may use it freely.
  6. No `std::cout` / `std::cerr` / `printf` writes in src/ (logging goes
     through the events logger).
  7. No mutable static/global state in src/ — every object is per-instance
     so distinct Jarvis/Fleet tenants can run concurrently on distinct
     threads (DESIGN.md §10). `static const`/`constexpr`/`constinit`
     constants are fine; anything else needs an entry in
     MUTABLE_STATIC_ALLOWLIST with a justification.

Exit status 0 when clean; 1 with a readable report otherwise.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

SCAN_DIRS = ("src", "tests", "bench", "examples")

# Every src/ module the lint invariants are consciously applied to. A new
# src/ subdirectory must be registered here (and in DESIGN.md §3) so its
# headers inherit the hygiene/RNG/iostream rules on purpose, not by luck.
SRC_MODULES = frozenset({
    "core", "events", "faults", "fsm", "neural", "obs", "rl", "runtime",
    "sim", "spl", "util",
})

# Files allowed to use raw OS randomness.
RNG_ALLOWLIST = {
    os.path.join("src", "util", "rng.h"),
    os.path.join("src", "util", "rng.cpp"),
}

# src/ files allowed to hold mutable static/global state. Empty on purpose:
# the concurrency audit for the fleet runtime found none, and keeping it
# that way is what lets tenants run on any worker without locks. Add a
# file here only with a written justification next to the entry.
MUTABLE_STATIC_ALLOWLIST: frozenset = frozenset()

PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
DIRECTIVE_RE = re.compile(r"^\s*#")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
RAND_RE = re.compile(r"(?<![\w:])(?:std\s*::\s*)?(?:rand|srand)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
IOSTREAM_RE = re.compile(r'^\s*#\s*include\s*[<"]iostream[>"]')
STREAM_WRITE_RE = re.compile(r"\bstd\s*::\s*(cout|cerr)\b|(?<![\w:])f?printf\s*\(")
# A namespace/function-scope `static` (or thread_local) object declaration.
# Lines with '(' are skipped below: static functions and static member
# function declarations are linkage, not state. `static_assert` has no \b
# match ('_' is a word character).
STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(?:static|thread_local)\b")
CONST_QUAL_RE = re.compile(r"\bconst(?:expr|init)?\b")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments and string literals (keeps line count)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def iter_files(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root)


def check_pragma_once(rel, lines, errors):
    for lineno, line in enumerate(lines, 1):
        if DIRECTIVE_RE.match(line):
            if not PRAGMA_RE.match(line):
                errors.append(
                    f"{rel}:{lineno}: first preprocessor directive must be "
                    "'#pragma once'")
            return
    errors.append(f"{rel}:1: header has no '#pragma once'")


def check_file_text(root, rel, errors):
    is_header = rel.endswith((".h", ".hpp"))
    in_src = rel.startswith("src" + os.sep)
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        raw = f.read()
    code = strip_comments(raw)
    code_lines = code.splitlines()

    if is_header:
        check_pragma_once(rel, raw.splitlines(), errors)
        for lineno, line in enumerate(code_lines, 1):
            if USING_NAMESPACE_RE.match(line):
                errors.append(
                    f"{rel}:{lineno}: 'using namespace' is banned in headers")

    if rel not in RNG_ALLOWLIST:
        for lineno, line in enumerate(code_lines, 1):
            if RAND_RE.search(line) or RANDOM_DEVICE_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: raw randomness is banned; route through "
                    "util/rng (seeded, replayable)")

    if in_src:
        for lineno, line in enumerate(code_lines, 1):
            if IOSTREAM_RE.match(line):
                errors.append(
                    f"{rel}:{lineno}: <iostream> is banned in src/ "
                    "(keep streams out of library hot paths)")
            if STREAM_WRITE_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: direct console output is banned in src/ "
                    "(use the events logger)")
            if (rel not in MUTABLE_STATIC_ALLOWLIST
                    and STATIC_DECL_RE.match(line)
                    and "(" not in line
                    and not CONST_QUAL_RE.search(line)):
                errors.append(
                    f"{rel}:{lineno}: mutable static/global state is banned "
                    "in src/ — keep objects per-instance so tenants stay "
                    "thread-safe (DESIGN.md §10); constants must be "
                    "const/constexpr")


def check_self_contained(root, rel, cxx, extra_flags):
    """Compiles the header alone; returns an error string or None."""
    # Include by absolute path: quoted includes inside the header still
    # resolve against its own directory, and nothing project-local can
    # shadow system headers (e.g. spl/features.h vs glibc <features.h>).
    wrapper = f'#include "{os.path.join(root, rel)}"\n'
    with tempfile.TemporaryDirectory() as tmp:
        tu = os.path.join(tmp, "self_containment_check.cpp")
        with open(tu, "w", encoding="utf-8") as f:
            f.write(wrapper)
        cmd = [
            cxx, "-std=c++20", "-fsyntax-only",
            "-I", os.path.join(root, "src"),
        ] + extra_flags + [tu]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            head = "\n    ".join(detail[:8])
            return f"{rel}: header is not self-contained:\n    {head}"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler for header self-containment checks")
    parser.add_argument("--skip-self-containment", action="store_true",
                        help="text checks only (no compiler invocations)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    files = list(iter_files(root))
    if not files:
        print("lint.py: no sources found under", root, file=sys.stderr)
        return 1

    errors = []
    src_root = os.path.join(root, "src")
    for entry in sorted(os.listdir(src_root)):
        if os.path.isdir(os.path.join(src_root, entry)) \
                and entry not in SRC_MODULES:
            errors.append(
                f"src/{entry}: module not registered in tools/lint.py "
                "SRC_MODULES (register it so lint rules apply on purpose)")
    for rel in files:
        check_file_text(root, rel, errors)

    headers = [f for f in files if f.endswith((".h", ".hpp"))]
    if not args.skip_self_containment:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=os.cpu_count() or 2) as pool:
            futures = {
                pool.submit(check_self_contained, root, rel, args.cxx, []): rel
                for rel in headers
            }
            for future in concurrent.futures.as_completed(futures):
                err = future.result()
                if err:
                    errors.append(err)

    if errors:
        print(f"lint.py: {len(errors)} finding(s):\n", file=sys.stderr)
        for err in sorted(errors):
            print("  " + err, file=sys.stderr)
        return 1

    mode = "text-only" if args.skip_self_containment else "full"
    print(f"lint.py: clean ({len(files)} files, {len(headers)} headers, "
          f"{mode} mode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
