#!/usr/bin/env python3
"""Repo-specific lint gate for Jarvis (registered as the `repo_lint` ctest).

Enforced invariants (see DESIGN.md "Correctness tooling"):

  1. Every header starts with `#pragma once` (first preprocessor directive).
  2. Every header is self-contained: it compiles standalone with
     `$CXX -fsyntax-only` and the project include paths.
  3. No `using namespace` at any scope inside headers.
  4. Randomness goes through util/rng: no `rand()`, `srand()`, or
     `std::random_device` anywhere outside src/util/rng.* (deterministic
     replay of episodes is part of the safety story).
  5. No <iostream> in src/ — the library must not drag streams into hot
     paths or emit stray output; CLIs under examples/ may use it freely.
  6. No `std::cout` / `std::cerr` / `printf` writes in src/ (logging goes
     through the events logger).
  7. No mutable static/global state in src/ — every object is per-instance
     so distinct Jarvis/Fleet tenants can run concurrently on distinct
     threads (DESIGN.md §10). `static const`/`constexpr`/`constinit`
     constants are fine; anything else needs an entry in
     MUTABLE_STATIC_ALLOWLIST with a justification.
  8. No raw std synchronization primitives in src/ outside the annotated
     wrapper (src/util/mutex.*): std::mutex, std::shared_mutex,
     std::lock_guard, std::unique_lock, std::scoped_lock,
     std::shared_lock, std::condition_variable(_any) and their headers
     are banned — locking goes through util::Mutex so Clang
     -Wthread-safety sees every acquisition (DESIGN.md §13).
     RAW_SYNC_ALLOWLIST is empty on purpose. Tests may use std
     primitives freely (they synchronize test scaffolding, not library
     state).
  9. Guard coverage: in any src/ header class that declares a
     util::Mutex / util::SharedMutex member, every `_`-suffixed data
     member must either carry JARVIS_GUARDED_BY / JARVIS_PT_GUARDED_BY
     or justify itself with an `// unguarded: <why>` comment on its
     declaration line. Clang's analysis only WEAKENS when an annotation
     is deleted — this rule is what makes deleting one a test failure
     (repo_lint) instead of a silent coverage loss.
 10. No raw file-write handles in src/ outside src/util/io.*:
     std::ofstream, std::fstream, fopen, freopen are banned — durable
     writes go through util::io's atomic temp-fsync-rename path so a
     crash can never leave a half-written checkpoint or report behind
     (DESIGN.md §14). Reads (std::ifstream) are unaffected; tests and
     examples/ may open files however they like. RAW_IO_ALLOWLIST is
     empty on purpose.
 11. No raw socket/fd I/O in src/ outside the transport layer
     (src/serve/transport.*) and the io layer (src/util/io.*): socket
     headers, socket/poll syscalls, and global-scope fd calls
     (::read/::write/::open/::close/...) are banned everywhere else —
     every byte stream rides serve::FramedTransport and every durable
     write rides util::io, so framing recovery and crash atomicity are
     enforced in exactly one place each (DESIGN.md §15).
     RAW_SOCKET_ALLOWLIST is empty on purpose. Tests and examples/ may
     use OS I/O freely.

Run with --self-test to exercise the rule engine against embedded
fixtures (wired into CI's static-analysis job).

Exit status 0 when clean; 1 with a readable report otherwise.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

SCAN_DIRS = ("src", "tests", "bench", "examples")

# Every src/ module the lint invariants are consciously applied to. A new
# src/ subdirectory must be registered here (and in DESIGN.md §3) so its
# headers inherit the hygiene/RNG/iostream rules on purpose, not by luck.
SRC_MODULES = frozenset({
    "core", "events", "faults", "fsm", "neural", "obs", "persist", "rl",
    "runtime", "serve", "sim", "spl", "util",
})

# Files allowed to use raw OS randomness.
RNG_ALLOWLIST = {
    os.path.join("src", "util", "rng.h"),
    os.path.join("src", "util", "rng.cpp"),
}

# src/ files allowed to hold mutable static/global state. Empty on purpose:
# the concurrency audit for the fleet runtime found none, and keeping it
# that way is what lets tenants run on any worker without locks. Add a
# file here only with a written justification next to the entry.
MUTABLE_STATIC_ALLOWLIST: frozenset = frozenset()

# The annotated locking layer itself — the only src/ files allowed to name
# raw std synchronization primitives (they wrap them).
SYNC_WRAPPER_FILES = {
    os.path.join("src", "util", "mutex.h"),
    os.path.join("src", "util", "mutex.cpp"),
}

# src/ files (beyond the wrapper) allowed to use raw std synchronization.
# Empty on purpose: every lock in the library is a util::Mutex so the
# thread-safety analysis sees it. Add a file here only with a written
# justification next to the entry.
RAW_SYNC_ALLOWLIST: frozenset = frozenset()

# The atomic-write layer itself — the only src/ files allowed to hold raw
# file-write handles (they implement the temp-fsync-rename commit).
IO_WRAPPER_FILES = {
    os.path.join("src", "util", "io.h"),
    os.path.join("src", "util", "io.cpp"),
}

# src/ files (beyond the io wrapper) allowed to write files directly.
# Empty on purpose: every durable write rides the atomic path, which is
# what makes checkpoint recovery trustworthy. Add a file here only with a
# written justification next to the entry.
RAW_IO_ALLOWLIST: frozenset = frozenset()

# The byte-stream boundary — the only src/ files allowed to touch sockets
# and raw file descriptors: the serve transport (framing + connection I/O)
# and the io layer (atomic durable writes). Everything else in src/ speaks
# serve::FramedTransport or util::io.
TRANSPORT_IO_FILES = {
    os.path.join("src", "serve", "transport.h"),
    os.path.join("src", "serve", "transport.cpp"),
    os.path.join("src", "util", "io.h"),
    os.path.join("src", "util", "io.cpp"),
}

# src/ files (beyond the transport/io boundary) allowed raw socket/fd I/O.
# Empty on purpose: one transport means hostile-input recovery and framing
# are tested in one place. Add a file here only with a written
# justification next to the entry.
RAW_SOCKET_ALLOWLIST: frozenset = frozenset()

PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
DIRECTIVE_RE = re.compile(r"^\s*#")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
RAND_RE = re.compile(r"(?<![\w:])(?:std\s*::\s*)?(?:rand|srand)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
IOSTREAM_RE = re.compile(r'^\s*#\s*include\s*[<"]iostream[>"]')
STREAM_WRITE_RE = re.compile(r"\bstd\s*::\s*(cout|cerr)\b|(?<![\w:])f?printf\s*\(")
# A namespace/function-scope `static` (or thread_local) object declaration.
# Lines with '(' are skipped below: static functions and static member
# function declarations are linkage, not state. `static_assert` has no \b
# match ('_' is a word character).
STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(?:static|thread_local)\b")
CONST_QUAL_RE = re.compile(r"\bconst(?:expr|init)?\b")
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b")
SYNC_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
# Write-capable file handles (rule 10). std::ifstream is deliberately NOT
# matched: reads cannot tear a durable artifact.
RAW_IO_WRITE_RE = re.compile(
    r"\bstd\s*::\s*(?:basic_)?(?:ofstream|fstream)\b"
    r"|(?<![\w:])f(?:re)?open\s*\(")
# Rule 11: socket headers, socket/poll syscalls, and global-scope posix fd
# calls. The bare-name socket alternatives use a lookbehind so member calls
# (obj.accept(...)) and std:: helpers (std::bind(...)) never match; the fd
# alternatives require an explicit global-scope `::` so names like
# vector::close stay legal.
SOCKET_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*<(?:sys/socket\.h|netinet/in\.h|netinet/tcp\.h|"
    r"arpa/inet\.h|sys/un\.h|poll\.h|sys/select\.h|sys/epoll\.h)>")
SOCKET_CALL_RE = re.compile(
    r"(?<![\w:.>])(?:::\s*)?(?:socket|bind|listen|accept4?|connect|"
    r"recv|send|recvfrom|sendto|setsockopt|getsockopt|getaddrinfo|"
    r"freeaddrinfo|poll|ppoll|epoll_(?:create1?|ctl|wait))\s*\(")
POSIX_FD_RE = re.compile(
    r"(?<![\w>)\]])::\s*(?:open|openat|creat|read|write|close|pipe2?|"
    r"dup2?|fsync|fdatasync|ftruncate|lseek)\s*\(")
# A util::Mutex / util::SharedMutex / util::CondVar data-member statement
# (the lock vocabulary itself is exempt from guard coverage).
SYNC_TYPE_RE = re.compile(r"\butil\s*::\s*(?:Mutex|SharedMutex|CondVar)\b")
MUTEX_MEMBER_RE = re.compile(r"\butil\s*::\s*(?:Shared)?Mutex\s+\w+\s*$")
GUARDED_MACRO_RE = re.compile(r"\bJARVIS_(?:PT_)?GUARDED_BY\s*\(")
JARVIS_MACRO_CALL_RE = re.compile(r"\bJARVIS_\w+\s*\([^()]*\)")
TRAILING_INIT_RE = re.compile(r"=[^=]*$")
TRAILING_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")
CLASS_HEAD_RE = re.compile(r"\b(?:class|struct)\b")
ENUM_HEAD_RE = re.compile(r"\benum\b")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments and string literals (keeps line count)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def check_guard_coverage(rel, raw, errors):
    """Rule 9: per-class guard coverage in src/ headers.

    Single-pass brace scanner over comment-stripped text. Tracks a stack of
    {} scopes, marking which are class/struct bodies; statements terminated
    by ';' at a class body's top level are candidate data members. A class
    that declares a util::Mutex/util::SharedMutex member must have every
    `_`-suffixed data member either annotated (JARVIS_GUARDED_BY /
    JARVIS_PT_GUARDED_BY) or tagged `// unguarded: <why>` in the raw
    source on its declaration lines.
    """
    code = strip_comments(raw)
    raw_lines = raw.splitlines()
    line = 1
    # Scope stack: each entry is a dict for a '{' scope; class bodies carry
    # a member list and a mutex flag.
    stack = []
    pending = []          # statement text accumulated at the current level
    pending_start = line  # first line of the pending statement

    def flush_member(frame, stmt_text, start_line, end_line):
        stmt = stmt_text.strip()
        if not stmt:
            return
        # Leading blank space in the accumulated text belongs to earlier
        # lines; the statement starts at its first content character.
        lead = stmt_text[:len(stmt_text) - len(stmt_text.lstrip())]
        start_line += lead.count("\n")
        if GUARDED_MACRO_RE.search(stmt):
            return  # annotated: fine
        cleaned = JARVIS_MACRO_CALL_RE.sub("", stmt)
        if MUTEX_MEMBER_RE.search(cleaned.strip()):
            frame["has_mutex"] = True
            return
        if SYNC_TYPE_RE.search(cleaned):
            return  # the lock vocabulary itself needs no guard
        cleaned = TRAILING_INIT_RE.sub("", cleaned).strip()
        name_match = TRAILING_NAME_RE.search(cleaned)
        if not name_match or not name_match.group(1).endswith("_"):
            return  # function declaration, using-alias, ... — not a member
        tagged = any(
            "unguarded:" in raw_lines[i - 1]
            for i in range(start_line, min(end_line, len(raw_lines)) + 1))
        if not tagged:
            frame["members"].append((name_match.group(1), start_line))

    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch == "\n":
            line += 1
            pending.append(ch)
        elif ch == "{":
            head = "".join(pending)
            is_class = (CLASS_HEAD_RE.search(head) is not None
                        and ENUM_HEAD_RE.search(head) is None)
            stack.append({
                "is_class": is_class,
                "members": [],
                "has_mutex": False,
            })
            pending = []
            pending_start = line
        elif ch == "}":
            if stack:
                frame = stack.pop()
                if frame["is_class"] and frame["has_mutex"]:
                    for name, lineno in frame["members"]:
                        if name is None:
                            continue
                        errors.append(
                            f"{rel}:{lineno}: member '{name}' of a "
                            "mutex-holding class has no JARVIS_GUARDED_BY /"
                            " JARVIS_PT_GUARDED_BY and no '// unguarded: "
                            "<why>' justification (guard coverage, lint "
                            "rule 9)")
            pending = []
            pending_start = line
        elif ch == ";":
            if stack and stack[-1]["is_class"]:
                flush_member(stack[-1], "".join(pending), pending_start, line)
            pending = []
            pending_start = line
        else:
            if not pending and not ch.isspace():
                pending_start = line
            pending.append(ch)
        i += 1


def iter_files(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root)


def check_pragma_once(rel, lines, errors):
    for lineno, line in enumerate(lines, 1):
        if DIRECTIVE_RE.match(line):
            if not PRAGMA_RE.match(line):
                errors.append(
                    f"{rel}:{lineno}: first preprocessor directive must be "
                    "'#pragma once'")
            return
    errors.append(f"{rel}:1: header has no '#pragma once'")


def check_file_text(root, rel, errors, text=None):
    is_header = rel.endswith((".h", ".hpp"))
    in_src = rel.startswith("src" + os.sep)
    if text is None:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
    else:
        raw = text
    code = strip_comments(raw)
    code_lines = code.splitlines()

    if is_header:
        check_pragma_once(rel, raw.splitlines(), errors)
        for lineno, line in enumerate(code_lines, 1):
            if USING_NAMESPACE_RE.match(line):
                errors.append(
                    f"{rel}:{lineno}: 'using namespace' is banned in headers")

    if rel not in RNG_ALLOWLIST:
        for lineno, line in enumerate(code_lines, 1):
            if RAND_RE.search(line) or RANDOM_DEVICE_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: raw randomness is banned; route through "
                    "util/rng (seeded, replayable)")

    if in_src:
        for lineno, line in enumerate(code_lines, 1):
            if IOSTREAM_RE.match(line):
                errors.append(
                    f"{rel}:{lineno}: <iostream> is banned in src/ "
                    "(keep streams out of library hot paths)")
            if STREAM_WRITE_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: direct console output is banned in src/ "
                    "(use the events logger)")
            if (rel not in MUTABLE_STATIC_ALLOWLIST
                    and STATIC_DECL_RE.match(line)
                    and "(" not in line
                    and not CONST_QUAL_RE.search(line)):
                errors.append(
                    f"{rel}:{lineno}: mutable static/global state is banned "
                    "in src/ — keep objects per-instance so tenants stay "
                    "thread-safe (DESIGN.md §10); constants must be "
                    "const/constexpr")
            if (rel not in SYNC_WRAPPER_FILES
                    and rel not in RAW_SYNC_ALLOWLIST
                    and (RAW_SYNC_RE.search(line)
                         or SYNC_INCLUDE_RE.match(line))):
                errors.append(
                    f"{rel}:{lineno}: raw std synchronization is banned in "
                    "src/ — use util::Mutex / util::MutexLock / "
                    "util::CondVar so Clang -Wthread-safety sees the lock "
                    "(lint rule 8, DESIGN.md §13)")
            if (rel not in IO_WRAPPER_FILES
                    and rel not in RAW_IO_ALLOWLIST
                    and RAW_IO_WRITE_RE.search(line)):
                errors.append(
                    f"{rel}:{lineno}: raw file-write handles are banned in "
                    "src/ — route durable writes through util::io's atomic "
                    "temp-fsync-rename path (lint rule 10, DESIGN.md §14)")
            if (rel not in TRANSPORT_IO_FILES
                    and rel not in RAW_SOCKET_ALLOWLIST
                    and (SOCKET_INCLUDE_RE.match(line)
                         or SOCKET_CALL_RE.search(line)
                         or POSIX_FD_RE.search(line))):
                errors.append(
                    f"{rel}:{lineno}: raw socket/fd I/O is banned in src/ — "
                    "byte streams go through serve::FramedTransport and "
                    "durable writes through util::io (lint rule 11, "
                    "DESIGN.md §15)")
        if is_header:
            check_guard_coverage(rel, raw, errors)


def check_self_contained(root, rel, cxx, extra_flags):
    """Compiles the header alone; returns an error string or None."""
    # Include by absolute path: quoted includes inside the header still
    # resolve against its own directory, and nothing project-local can
    # shadow system headers (e.g. spl/features.h vs glibc <features.h>).
    wrapper = f'#include "{os.path.join(root, rel)}"\n'
    with tempfile.TemporaryDirectory() as tmp:
        tu = os.path.join(tmp, "self_containment_check.cpp")
        with open(tu, "w", encoding="utf-8") as f:
            f.write(wrapper)
        cmd = [
            cxx, "-std=c++20", "-fsyntax-only",
            "-I", os.path.join(root, "src"),
        ] + extra_flags + [tu]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            head = "\n    ".join(detail[:8])
            return f"{rel}: header is not self-contained:\n    {head}"
    return None


# --- Self-test fixtures ----------------------------------------------------
#
# Each case: (name, virtual path, file text, list of substrings that must
# each appear in exactly one finding; [] = must be clean). Exercised by
# --self-test (wired into CI's static-analysis job) so a regression in the
# rule engine fails loudly instead of silently passing dirty code.

_CLEAN_GUARDED_CLASS = """#pragma once
namespace fixture {
class Guarded {
 public:
  void Poke() JARVIS_EXCLUDES(mutex_);
  std::size_t count() const { return count_; }

 private:
  mutable util::Mutex mutex_;
  util::CondVar ready_;
  std::size_t count_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::map<int, int> table_
      JARVIS_GUARDED_BY(mutex_);
  const int fixed_ = 3;  // unguarded: fixed at construction
};
}  // namespace fixture
"""

SELF_TEST_CASES = [
    ("rule8 flags std::mutex member", "src/fix/a.h",
     "#pragma once\nclass A { std::mutex m_; };\n",
     ["raw std synchronization"]),
    ("rule8 flags lock_guard use", "src/fix/a.cpp",
     "void f() { std::lock_guard<std::mutex> lock(m); }\n",
     ["raw std synchronization"]),
    ("rule8 flags <mutex> include", "src/fix/b.cpp",
     "#include <mutex>\n",
     ["raw std synchronization"]),
    ("rule8 flags condition_variable", "src/fix/c.cpp",
     "void f(std::condition_variable& cv);\n",
     ["raw std synchronization"]),
    ("rule8 exempts the wrapper itself", "src/util/mutex.h",
     "#pragma once\nclass Mutex { std::mutex mutex_; };\n",
     []),
    ("rule8 does not apply to tests", "tests/fix_test.cpp",
     "#include <mutex>\nstd::mutex m;\n",
     []),
    ("rule9 clean annotated class", "src/fix/clean.h",
     _CLEAN_GUARDED_CLASS, []),
    ("rule9 flags unannotated member", "src/fix/bad.h",
     _CLEAN_GUARDED_CLASS.replace(
         "std::size_t count_ JARVIS_GUARDED_BY(mutex_) = 0;",
         "std::size_t count_ = 0;"),
     ["member 'count_'"]),
    ("rule9 flags a deleted GUARDED_BY", "src/fix/deleted.h",
     _CLEAN_GUARDED_CLASS.replace(
         "std::map<int, int> table_\n      JARVIS_GUARDED_BY(mutex_);",
         "std::map<int, int> table_;"),
     ["member 'table_'"]),
    ("rule9 flags a removed unguarded tag", "src/fix/untagged.h",
     _CLEAN_GUARDED_CLASS.replace(
         "  // unguarded: fixed at construction", ""),
     ["member 'fixed_'"]),
    ("rule9 ignores mutex-free classes", "src/fix/nomutex.h",
     "#pragma once\nclass Plain { std::size_t count_ = 0; };\n",
     []),
    ("rule9 scopes guards per class", "src/fix/sibling.h",
     "#pragma once\n"
     "class Guarded { util::Mutex mutex_;\n"
     "  int v_ JARVIS_GUARDED_BY(mutex_); };\n"
     "class Plain { int free_ = 0; };\n",
     []),
    ("rule10 flags std::ofstream member", "src/fix/w.h",
     "#pragma once\nclass W { std::ofstream out_; };\n",
     ["raw file-write handles"]),
    ("rule10 flags std::fstream use", "src/fix/w.cpp",
     "void f() { std::fstream io(path); }\n",
     ["raw file-write handles"]),
    ("rule10 flags fopen call", "src/fix/x.cpp",
     'void f() { FILE* fp = fopen("x", "w"); }\n',
     ["raw file-write handles"]),
    ("rule10 flags freopen call", "src/fix/y.cpp",
     'void f() { freopen("x", "w", fp); }\n',
     ["raw file-write handles"]),
    ("rule10 allows ifstream reads", "src/fix/r.cpp",
     "void f() { std::ifstream in(path); }\n",
     []),
    ("rule10 exempts the io layer itself", "src/util/io.cpp",
     "void f() { std::ofstream out(path); }\n",
     []),
    ("rule10 does not apply to tests", "tests/fix_io_test.cpp",
     "void f() { std::ofstream out(path); }\n",
     []),
    ("rule11 flags socket() call", "src/fix/sock.cpp",
     "void f() { int fd = socket(AF_INET, SOCK_STREAM, 0); }\n",
     ["raw socket/fd I/O"]),
    ("rule11 flags a socket header include", "src/fix/sock2.cpp",
     "#include <sys/socket.h>\n",
     ["raw socket/fd I/O"]),
    ("rule11 flags global-scope ::write", "src/fix/sock3.cpp",
     "void f(int fd) { ::write(fd, buf, n); }\n",
     ["raw socket/fd I/O"]),
    ("rule11 flags poll()", "src/fix/sock4.cpp",
     "void f() { ::poll(&pfd, 1, 100); }\n",
     ["raw socket/fd I/O"]),
    ("rule11 ignores std::bind and member accept", "src/fix/sock5.cpp",
     "void f() { auto g = std::bind(h, 1); obj.accept(v); q->connect(w); }\n",
     []),
    ("rule11 ignores scoped ::close lookalikes", "src/fix/sock6.cpp",
     "void f() { file_stream::close(handle); }\n",
     []),
    ("rule11 exempts the transport layer", "src/serve/transport.cpp",
     "void f() { int fd = socket(AF_INET, SOCK_STREAM, 0); }\n",
     []),
    ("rule11 exempts the io layer", "src/util/io.cpp",
     "void f(int fd) { ::fsync(fd); }\n",
     []),
    ("rule11 does not apply to examples", "examples/fix_daemon.cpp",
     "#include <sys/socket.h>\nvoid f(int fd) { ::close(fd); }\n",
     []),
]


def run_self_test():
    failures = []
    for name, rel, text, expected in SELF_TEST_CASES:
        errors = []
        check_file_text(None, rel, errors, text=text)
        if expected:
            for marker in expected:
                hits = [e for e in errors if marker in e]
                if len(hits) != 1:
                    failures.append(
                        f"{name}: expected exactly one finding containing "
                        f"{marker!r}, got {len(hits)} in {errors!r}")
            if len(errors) != len(expected):
                failures.append(
                    f"{name}: expected {len(expected)} finding(s), got "
                    f"{errors!r}")
        elif errors:
            failures.append(f"{name}: expected clean, got {errors!r}")
    if failures:
        print(f"lint.py --self-test: {len(failures)} failure(s):\n",
              file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        return 1
    print(f"lint.py --self-test: {len(SELF_TEST_CASES)} fixture cases pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler for header self-containment checks")
    parser.add_argument("--skip-self-containment", action="store_true",
                        help="text checks only (no compiler invocations)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule engine against embedded fixtures "
                             "and exit")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    root = os.path.abspath(args.root)

    files = list(iter_files(root))
    if not files:
        print("lint.py: no sources found under", root, file=sys.stderr)
        return 1

    errors = []
    src_root = os.path.join(root, "src")
    for entry in sorted(os.listdir(src_root)):
        if os.path.isdir(os.path.join(src_root, entry)) \
                and entry not in SRC_MODULES:
            errors.append(
                f"src/{entry}: module not registered in tools/lint.py "
                "SRC_MODULES (register it so lint rules apply on purpose)")
    for rel in files:
        check_file_text(root, rel, errors)

    headers = [f for f in files if f.endswith((".h", ".hpp"))]
    if not args.skip_self_containment:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=os.cpu_count() or 2) as pool:
            futures = {
                pool.submit(check_self_contained, root, rel, args.cxx, []): rel
                for rel in headers
            }
            for future in concurrent.futures.as_completed(futures):
                err = future.result()
                if err:
                    errors.append(err)

    if errors:
        print(f"lint.py: {len(errors)} finding(s):\n", file=sys.stderr)
        for err in sorted(errors):
            print("  " + err, file=sys.stderr)
        return 1

    mode = "text-only" if args.skip_self_containment else "full"
    print(f"lint.py: clean ({len(files)} files, {len(headers)} headers, "
          f"{mode} mode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
