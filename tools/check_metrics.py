#!/usr/bin/env python3
"""Schema + invariant validator for `jarvis_cli metrics` output.

Reads the JSON document from stdin (or a file argument) and checks:

  1. Top-level shape: `fleet` and `tenants` are metric snapshots, `spans`
     is a list of span records.
  2. Snapshot shape: `counters` / `gauges` / `histograms` arrays whose
     entries carry the expected typed fields; counter values are
     non-negative integers; `deterministic` flags are booleans; names are
     non-empty, dot-separated, and unique per kind.
  3. Histogram integrity: `bucket_counts` has exactly
     len(upper_bounds) + 1 entries (the +inf overflow bucket is implicit),
     upper bounds strictly increase, and the bucket counts sum to `count`.
  4. Span integrity: non-negative start/duration, depth >= 0, and at least
     one root (depth 0) span when any spans are present.
  5. Pipeline invariants mirrored from the obs counter contracts:
     events_seen == events_accepted + events_dropped and
     monitor decisions == allowed + denied + benign_anomalies, whenever
     those counters are present in the tenant aggregate.

Exit status 0 when the document is well-formed; 1 with a readable report
otherwise. Wired into CI right after the `jarvis_cli metrics` smoke run.
"""

import json
import sys

REQUIRED_TOP_LEVEL = ("fleet", "tenants", "spans")

COUNTER_FIELDS = {"name": str, "value": int, "deterministic": bool}
GAUGE_FIELDS = {"name": str, "value": (int, float), "deterministic": bool}
HISTOGRAM_FIELDS = {
    "name": str,
    "upper_bounds": list,
    "bucket_counts": list,
    "count": int,
    "sum": (int, float),
    "nan_ignored": int,
    "deterministic": bool,
}
SPAN_FIELDS = {
    "name": str,
    "thread": int,
    "depth": int,
    "start_ns": int,
    "duration_ns": int,
}

# (total, [parts]) counter identities the instrumented pipeline guarantees;
# checked only when every involved counter is present in the snapshot.
COUNTER_IDENTITIES = (
    ("events.parser.events_seen",
     ("events.parser.events_accepted", "events.parser.events_dropped")),
    ("core.monitor.decisions",
     ("core.monitor.allowed", "core.monitor.denied",
      "core.monitor.benign_anomalies")),
    ("spl.learner.episodes_offered",
     ("spl.learner.episodes_used", "spl.learner.episodes_skipped")),
)


def check_fields(entry, fields, where, errors):
    if not isinstance(entry, dict):
        errors.append(f"{where}: expected an object, got {type(entry).__name__}")
        return False
    ok = True
    for key, expected in fields.items():
        if key not in entry:
            errors.append(f"{where}: missing field '{key}'")
            ok = False
        elif not isinstance(entry[key], expected) or isinstance(
                entry[key], bool) != (expected is bool):
            # bool is a subclass of int; keep value/bool fields distinct.
            errors.append(
                f"{where}: field '{key}' has type "
                f"{type(entry[key]).__name__}")
            ok = False
    return ok


def check_name(name, where, errors):
    if not name or name != name.strip("."):
        errors.append(f"{where}: malformed metric name '{name}'")


def check_snapshot(snapshot, where, errors):
    """Validates one MetricsSnapshot JSON object; returns its counter map."""
    counters = {}
    if not isinstance(snapshot, dict):
        errors.append(f"{where}: expected an object")
        return counters
    for kind in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(kind), list):
            errors.append(f"{where}.{kind}: missing or not a list")
            return counters

    seen = set()
    for i, entry in enumerate(snapshot["counters"]):
        tag = f"{where}.counters[{i}]"
        if not check_fields(entry, COUNTER_FIELDS, tag, errors):
            continue
        check_name(entry["name"], tag, errors)
        if entry["value"] < 0:
            errors.append(f"{tag}: negative counter value {entry['value']}")
        if entry["name"] in seen:
            errors.append(f"{tag}: duplicate counter '{entry['name']}'")
        seen.add(entry["name"])
        counters[entry["name"]] = entry["value"]

    for i, entry in enumerate(snapshot["gauges"]):
        tag = f"{where}.gauges[{i}]"
        if check_fields(entry, GAUGE_FIELDS, tag, errors):
            check_name(entry["name"], tag, errors)

    for i, entry in enumerate(snapshot["histograms"]):
        tag = f"{where}.histograms[{i}]"
        if not check_fields(entry, HISTOGRAM_FIELDS, tag, errors):
            continue
        check_name(entry["name"], tag, errors)
        bounds = entry["upper_bounds"]
        buckets = entry["bucket_counts"]
        if len(buckets) != len(bounds) + 1:
            errors.append(
                f"{tag}: bucket_counts has {len(buckets)} entries, expected "
                f"len(upper_bounds) + 1 = {len(bounds) + 1} (+inf bucket)")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            errors.append(f"{tag}: upper_bounds not strictly increasing")
        if any(not isinstance(c, int) or c < 0 for c in buckets):
            errors.append(f"{tag}: bucket_counts must be non-negative ints")
        elif sum(buckets) != entry["count"]:
            errors.append(
                f"{tag}: bucket_counts sum to {sum(buckets)} but count is "
                f"{entry['count']}")
        if entry["count"] < 0 or entry["nan_ignored"] < 0:
            errors.append(f"{tag}: negative count/nan_ignored")
    return counters


def check_spans(spans, errors):
    if not isinstance(spans, list):
        errors.append("spans: missing or not a list")
        return
    for i, span in enumerate(spans):
        tag = f"spans[{i}]"
        if not check_fields(span, SPAN_FIELDS, tag, errors):
            continue
        if span["depth"] < 0 or span["start_ns"] < 0 or span["duration_ns"] < 0:
            errors.append(f"{tag}: negative depth/start_ns/duration_ns")
        if not span["name"]:
            errors.append(f"{tag}: empty span name")
    if spans and not any(
            isinstance(s, dict) and s.get("depth") == 0 for s in spans):
        errors.append("spans: no root (depth 0) span in a non-empty trace")


def check_identities(counters, where, errors):
    for total, parts in COUNTER_IDENTITIES:
        if total not in counters or any(p not in counters for p in parts):
            continue
        part_sum = sum(counters[p] for p in parts)
        if counters[total] != part_sum:
            breakdown = " + ".join(f"{p}={counters[p]}" for p in parts)
            errors.append(
                f"{where}: invariant broken: {total}={counters[total]} but "
                f"{breakdown} (= {part_sum})")


def main():
    if len(sys.argv) > 2 or (len(sys.argv) == 2 and sys.argv[1] in
                             ("-h", "--help")):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        if len(sys.argv) == 2:
            with open(sys.argv[1], encoding="utf-8") as f:
                document = json.load(f)
        else:
            document = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_metrics.py: cannot parse input: {err}", file=sys.stderr)
        return 1

    errors = []
    if not isinstance(document, dict):
        errors.append("top level: expected a JSON object")
    else:
        for key in REQUIRED_TOP_LEVEL:
            if key not in document:
                errors.append(f"top level: missing '{key}'")
        check_snapshot(document.get("fleet", {}), "fleet", errors)
        tenant_counters = check_snapshot(
            document.get("tenants", {}), "tenants", errors)
        check_spans(document.get("spans", []), errors)
        check_identities(tenant_counters, "tenants", errors)

    if errors:
        print(f"check_metrics.py: {len(errors)} finding(s):", file=sys.stderr)
        for err in errors:
            print("  " + err, file=sys.stderr)
        return 1
    print("check_metrics.py: metrics document is well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
