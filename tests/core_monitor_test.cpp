#include "core/online_monitor.h"

#include <gtest/gtest.h>

#include "events/handler.h"
#include "sim/testbed.h"

namespace jarvis::core {
namespace {

class MonitorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 2000;
    testbed_ = new sim::Testbed(config);
    learner_ = new spl::SafetyPolicyLearner(testbed_->home_a(),
                                            spl::SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete learner_;
    delete testbed_;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  static events::Event CommandEvent(int minute, const std::string& device,
                                    const std::string& value,
                                    const std::string& command) {
    events::Event event;
    event.date = util::SimTime(minute);
    event.device_label = device;
    event.attribute = "state";
    event.attribute_value = value;
    event.command = command;
    return event;
  }

  static events::Event SensorEvent(int minute, const std::string& device,
                                   const std::string& value) {
    return CommandEvent(minute, device, value, "");
  }

  static sim::Testbed* testbed_;
  static spl::SafetyPolicyLearner* learner_;
};

sim::Testbed* MonitorFixture::testbed_ = nullptr;
spl::SafetyPolicyLearner* MonitorFixture::learner_ = nullptr;

TEST_F(MonitorFixture, RequiresLearnedLearner) {
  spl::SafetyPolicyLearner fresh(testbed_->home_a(), spl::SplConfig{});
  EXPECT_THROW(OnlineMonitor(testbed_->home_a(), fresh,
                             fsm::StateVector(11, 0)),
               std::invalid_argument);
}

TEST_F(MonitorFixture, FlagsNightUnlockAsItArrives) {
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  const auto verdict =
      monitor.Consume(CommandEvent(2 * 60, "lock", "unlocked", "unlock"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, spl::Verdict::kViolation);
  EXPECT_EQ(monitor.violations(), 1u);
  // The tracked state followed the transition.
  EXPECT_EQ(monitor.state()[0],
            *testbed_->home_a().device(0).FindState("unlocked"));
}

TEST_F(MonitorFixture, SensorEventsUpdateContextForClassification) {
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  // An unlock right after the door sensor verifies a user at an arrival
  // hour is the whitelisted App-1 behavior.
  EXPECT_FALSE(monitor.Consume(
      SensorEvent(17 * 60 + 40, "door_sensor", "auth_user")).has_value());
  const auto verdict = monitor.Consume(
      CommandEvent(17 * 60 + 40, "lock", "unlocked", "unlock"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, spl::Verdict::kSafe);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST_F(MonitorFixture, UnknownVocabularyCountedNotFatal) {
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  EXPECT_FALSE(monitor.Consume(CommandEvent(60, "toaster", "on", "pop"))
                   .has_value());
  EXPECT_FALSE(monitor.Consume(SensorEvent(61, "temp_sensor", "plasma"))
                   .has_value());
  EXPECT_FALSE(monitor.Consume(CommandEvent(62, "lock", "unlocked", "warp"))
                   .has_value());
  EXPECT_EQ(monitor.unknown_events(), 3u);
  EXPECT_EQ(monitor.events_consumed(), 3u);
  EXPECT_EQ(monitor.commands_classified(), 0u);
}

TEST_F(MonitorFixture, AttachedToBusStreamsAlerts) {
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  events::EventBus bus;
  std::vector<MonitorAlert> alerts;
  monitor.Attach(bus,
                 [&](const MonitorAlert& alert) { alerts.push_back(alert); });

  // A normal sensor reading, a violation, then a safe arrival unlock.
  bus.Publish(SensorEvent(2 * 60, "temp_sensor", "optimal"));
  bus.Publish(CommandEvent(2 * 60 + 1, "temp_sensor", "off", "power_off"));
  bus.Publish(SensorEvent(17 * 60, "door_sensor", "auth_user"));

  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].device_label, "temp_sensor");
  EXPECT_EQ(alerts[0].action_name, "power_off");
  EXPECT_EQ(alerts[0].verdict, spl::Verdict::kViolation);
}

TEST_F(MonitorFixture, FailSafeDeniesCommandOnUndecodableState) {
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  std::vector<MonitorAlert> alerts;
  events::EventBus bus;
  monitor.Attach(bus,
                 [&](const MonitorAlert& alert) { alerts.push_back(alert); });

  // A corrupted sensor report makes the device's tracked state untrusted.
  bus.Publish(SensorEvent(60, "temp_sensor", "??corrupt??"));
  EXPECT_EQ(monitor.unknown_events(), 1u);

  // Deny-unsafe-by-default: the follow-up command cannot be classified
  // against a trusted context, so it is denied — and counted as a trust
  // failure, not a learner verdict.
  const auto verdict =
      monitor.Consume(CommandEvent(61, "temp_sensor", "off", "power_off"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, spl::Verdict::kViolation);
  EXPECT_EQ(monitor.unknown_state_denials(), 1u);
  EXPECT_EQ(monitor.failsafe_denials(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.commands_classified(), 0u);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].verdict, spl::Verdict::kViolation);

  // The next good report restores trust and normal classification.
  bus.Publish(SensorEvent(62, "temp_sensor", "optimal"));
  monitor.Consume(CommandEvent(63, "temp_sensor", "off", "power_off"));
  EXPECT_EQ(monitor.commands_classified(), 1u);
  EXPECT_EQ(monitor.failsafe_denials(), 1u);
}

TEST_F(MonitorFixture, MarkStateUnknownExternallyTriggersDenial) {
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  monitor.MarkStateUnknown(0);  // e.g. health system saw the lock offline
  const auto verdict = monitor.Consume(
      CommandEvent(17 * 60 + 40, "lock", "unlocked", "unlock"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, spl::Verdict::kViolation);
  EXPECT_EQ(monitor.unknown_state_denials(), 1u);

  // A decodable report brings the lock back.
  monitor.Consume(SensorEvent(17 * 60 + 41, "lock", "unlocked"));
  monitor.Consume(CommandEvent(17 * 60 + 42, "lock", "locked", "lock"));
  EXPECT_EQ(monitor.commands_classified(), 1u);
}

TEST_F(MonitorFixture, StalenessClockDeniesOldContext) {
  MonitorConfig config;
  config.staleness_limit_minutes = 30;
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0), config);

  // temp_sensor reports at minute 0; by minute 100 that context is stale.
  monitor.Consume(SensorEvent(0, "temp_sensor", "optimal"));
  const auto verdict =
      monitor.Consume(CommandEvent(100, "temp_sensor", "off", "power_off"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, spl::Verdict::kViolation);
  EXPECT_EQ(monitor.stale_denials(), 1u);

  // The clock only starts at a device's first report: the lock never
  // reported, so its constructor-supplied state is still trusted.
  monitor.Consume(CommandEvent(100, "lock", "unlocked", "unlock"));
  EXPECT_EQ(monitor.commands_classified(), 1u);
  EXPECT_EQ(monitor.stale_denials(), 1u);

  // A fresh report resets the clock.
  monitor.Consume(SensorEvent(101, "temp_sensor", "optimal"));
  monitor.Consume(CommandEvent(110, "temp_sensor", "off", "power_off"));
  EXPECT_EQ(monitor.commands_classified(), 2u);
  EXPECT_EQ(monitor.stale_denials(), 1u);
}

TEST_F(MonitorFixture, FailSafeOffPreservesLegacyBehavior) {
  MonitorConfig config;
  config.fail_safe = false;
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0), config);
  monitor.Consume(SensorEvent(60, "temp_sensor", "plasma"));
  monitor.Consume(CommandEvent(61, "temp_sensor", "off", "power_off"));
  EXPECT_EQ(monitor.failsafe_denials(), 0u);
  EXPECT_EQ(monitor.commands_classified(), 1u);
}

TEST_F(MonitorFixture, StreamingMatchesBatchAuditOnNaturalDay) {
  // The streaming monitor over a day's event stream must agree with the
  // batch audit of the same day's episode on the violation count.
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  404);
  const auto generator = testbed_->home_a_generator();
  const auto trace = resident.SimulateDay(generator.Generate(90),
                                          resident.OvernightState(), 21.0);

  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        trace.episode.initial_state());
  for (const auto& event : trace.events) monitor.Consume(event);

  const auto audit = learner_->AuditEpisode(trace.episode);
  EXPECT_EQ(monitor.violations(), audit.violations);
  EXPECT_EQ(monitor.commands_classified(), audit.transitions_checked);
}

}  // namespace
}  // namespace jarvis::core
