// Tests for the benign-anomaly generator (SIMADL stand-in) and the
// security-violation generator (Soteria/IoTGuard stand-in).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fsm/device_library.h"
#include "util/check.h"
#include "sim/anomaly.h"
#include "sim/attack.h"
#include "sim/testbed.h"

namespace jarvis::sim {
namespace {

class AdversarialFixture : public ::testing::Test {
 protected:
  AdversarialFixture() : home_(fsm::BuildFullHome()) {}
  fsm::EnvironmentFsm home_;
};

TEST_F(AdversarialFixture, SupportedKindsInFullHome) {
  AnomalyGenerator generator(home_, 1);
  const auto kinds = generator.SupportedKinds();
  EXPECT_EQ(kinds.size(), 6u);  // all archetypes expressible
}

TEST_F(AdversarialFixture, SupportedKindsInSmallHome) {
  const fsm::EnvironmentFsm small = fsm::BuildExampleHome();
  AnomalyGenerator generator(small, 1);
  const auto kinds = generator.SupportedKinds();
  // Example home has light but no fridge/oven/tv/washer.
  std::set<AnomalyKind> set(kinds.begin(), kinds.end());
  EXPECT_TRUE(set.count(AnomalyKind::kOutOfScheduleLight));
  EXPECT_TRUE(set.count(AnomalyKind::kDoubleToggle));
  EXPECT_FALSE(set.count(AnomalyKind::kFridgeDoorLeftOpen));
}

TEST_F(AdversarialFixture, GeneratedAnomaliesAreWellFormed) {
  AnomalyGenerator generator(home_, 2);
  fsm::StateVector state(home_.device_count(), 0);
  for (int i = 0; i < 100; ++i) {
    const AnomalyInstance instance = generator.Generate(state);
    EXPECT_GE(instance.minute, 0);
    EXPECT_LT(instance.minute, util::kMinutesPerDay);
    home_.ValidateAction(instance.action);
    int touched = 0;
    for (fsm::ActionIndex a : instance.action) {
      touched += (a != fsm::kNoAction) ? 1 : 0;
    }
    EXPECT_EQ(touched, 1) << "benign anomalies touch one device";
    EXPECT_FALSE(instance.description.empty());
  }
}

TEST_F(AdversarialFixture, AnomalyMatchesItsArchetypePredicate) {
  AnomalyGenerator generator(home_, 3);
  fsm::StateVector state(home_.device_count(), 0);
  for (int i = 0; i < 200; ++i) {
    const AnomalyInstance instance = generator.Generate(state);
    for (std::size_t d = 0; d < instance.action.size(); ++d) {
      if (instance.action[d] == fsm::kNoAction) continue;
      const auto& device = home_.devices()[d];
      EXPECT_TRUE(generator.LooksLikeBenignArchetype(
          device.label(), device.action_name(instance.action[d]),
          instance.minute))
          << device.label() << " at " << instance.minute;
    }
  }
}

TEST_F(AdversarialFixture, TrainingSetCompositionAndLabels) {
  AnomalyGenerator generator(home_, 4);
  std::vector<fsm::TriggerAction> normal;
  fsm::StateVector state(home_.device_count(), 0);
  fsm::ActionVector act(home_.device_count(), fsm::kNoAction);
  act[2] = 1;  // light power_on
  for (int i = 0; i < 50; ++i) normal.push_back({state, act, 400 + i});

  const auto samples = generator.BuildTrainingSet(normal, 300, 100);
  EXPECT_EQ(samples.size(), 50u + 300u + 100u);
  std::size_t positives = 0;
  for (const auto& sample : samples) positives += sample.benign_anomaly;
  EXPECT_EQ(positives, 300u);
  EXPECT_THROW(generator.BuildTrainingSet({}, 10), std::invalid_argument);
}

TEST_F(AdversarialFixture, BackgroundNegativesAvoidArchetypes) {
  AnomalyGenerator generator(home_, 5);
  std::vector<fsm::TriggerAction> normal;
  fsm::StateVector state(home_.device_count(), 0);
  fsm::ActionVector act(home_.device_count(), fsm::kNoAction);
  act[2] = 1;
  normal.push_back({state, act, 400});
  const auto samples = generator.BuildTrainingSet(normal, 50, 200);
  for (const auto& sample : samples) {
    if (sample.benign_anomaly) continue;
    for (std::size_t d = 0; d < sample.ta.action.size(); ++d) {
      if (sample.ta.action[d] == fsm::kNoAction) continue;
      const auto& device = home_.devices()[d];
      // The original normal sample is allowed; background negatives only.
      if (sample.ta.minute_of_day == 400 && d == 2) continue;
      EXPECT_FALSE(generator.LooksLikeBenignArchetype(
          device.label(), device.action_name(sample.ta.action[d]),
          sample.ta.minute_of_day));
    }
  }
}

TEST_F(AdversarialFixture, ViolationCountsMatchPaper) {
  AttackGenerator generator(home_, 6);
  const auto violations = generator.GenerateAll();
  ASSERT_EQ(violations.size(), 214u);
  std::map<ViolationType, int> counts;
  for (const auto& violation : violations) ++counts[violation.type];
  EXPECT_EQ(counts[ViolationType::kTriggerActionSafety], 114);
  EXPECT_EQ(counts[ViolationType::kAccessControl], 40);
  EXPECT_EQ(counts[ViolationType::kConflictRace], 40);
  EXPECT_EQ(counts[ViolationType::kMaliciousApp], 10);
  EXPECT_EQ(counts[ViolationType::kInsider], 10);
}

TEST_F(AdversarialFixture, ViolationsArePairwiseDistinct) {
  AttackGenerator generator(home_, 7);
  const auto violations = generator.GenerateAll();
  std::set<std::pair<std::uint64_t, std::vector<int>>> seen;
  for (const auto& violation : violations) {
    home_.ValidateState(violation.state);
    home_.ValidateAction(violation.action);
    EXPECT_GE(violation.minute, 0);
    EXPECT_LT(violation.minute, util::kMinutesPerDay);
    const auto key = std::make_pair(
        home_.codec().Encode(violation.state),
        std::vector<int>(violation.action.begin(), violation.action.end()));
    EXPECT_TRUE(seen.insert(key).second) << violation.description;
  }
}

TEST_F(AdversarialFixture, CustomCountsRespected) {
  AttackGenerator generator(home_, 8);
  ViolationCounts counts{10, 4, 4, 2, 2};
  const auto violations = generator.GenerateAll(counts);
  EXPECT_EQ(violations.size(), static_cast<std::size_t>(counts.total()));
}

TEST_F(AdversarialFixture, RequiresFullHome) {
  const fsm::EnvironmentFsm small = fsm::BuildExampleHome();
  EXPECT_THROW(AttackGenerator(small, 1), util::CheckError);
}

TEST_F(AdversarialFixture, InjectionReplacesExactlyOneStep) {
  // Build a quiet base episode.
  fsm::StateVector initial(home_.device_count(), 0);
  fsm::Episode base({util::kMinutesPerDay, 1}, util::SimTime(0), initial);
  for (int m = 0; m < util::kMinutesPerDay; ++m) {
    base.Record(util::SimTime(m), initial,
                fsm::ActionVector(home_.device_count(), fsm::kNoAction));
  }
  AttackGenerator generator(home_, 9);
  const auto violations = generator.GenerateAll({2, 1, 1, 1, 1});
  for (const auto& violation : violations) {
    const auto injected =
        AttackGenerator::InjectIntoEpisode(home_, base, violation);
    ASSERT_EQ(injected.size(), base.size());
    int changed = 0;
    for (std::size_t m = 0; m < injected.size(); ++m) {
      if (injected.steps()[m].action != base.steps()[m].action) {
        ++changed;
        EXPECT_EQ(static_cast<int>(m), violation.minute);
        EXPECT_EQ(injected.steps()[m].action, violation.action);
        EXPECT_EQ(injected.steps()[m].state, violation.state);
      }
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST_F(AdversarialFixture, NamesAreHuman) {
  EXPECT_EQ(ViolationTypeName(ViolationType::kInsider), "insider attack");
  EXPECT_EQ(AnomalyKindName(AnomalyKind::kDoubleToggle), "double-toggle");
}

}  // namespace
}  // namespace jarvis::sim
