// End-to-end integration: the small-scale version of the paper's full
// evaluation, exercised as one pipeline — simulate, log, parse, learn,
// detect, filter, optimize.
#include <gtest/gtest.h>

#include "core/benefit_space.h"
#include "core/jarvis.h"
#include "events/bus.h"
#include "events/logger_app.h"
#include "sim/testbed.h"
#include "util/stats.h"

namespace jarvis {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 3000;
    testbed_ = new sim::Testbed(config);
    core::JarvisConfig jarvis_config;
    jarvis_config.trainer.episodes = 10;
    jarvis_ = new core::Jarvis(testbed_->home_a(), jarvis_config);
    jarvis_->LearnPolicies(testbed_->HomeALearningEpisodes(),
                           testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete jarvis_;
    delete testbed_;
    jarvis_ = nullptr;
    testbed_ = nullptr;
  }

  static sim::Testbed* testbed_;
  static core::Jarvis* jarvis_;
};

sim::Testbed* EndToEnd::testbed_ = nullptr;
core::Jarvis* EndToEnd::jarvis_ = nullptr;

TEST_F(EndToEnd, SecurityEvaluationSmallScale) {
  // Paper Section VI-B at reduced scale: every violation injected into
  // several random episodes; the SPL must flag each injected episode.
  const auto violations = testbed_->BuildViolations();
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  2024);
  const auto generator = testbed_->home_a_generator();
  const auto base_days = {20, 33, 47};

  std::vector<fsm::Episode> bases;
  for (int day : base_days) {
    bases.push_back(resident
                        .SimulateDay(generator.Generate(day),
                                     resident.OvernightState(), 21.0)
                        .episode);
  }

  std::size_t flagged = 0;
  std::size_t total = 0;
  util::Rng rng(99);
  for (std::size_t v = 0; v < violations.size(); v += 10) {
    for (const auto& base : bases) {
      const auto injected = sim::AttackGenerator::InjectIntoEpisode(
          testbed_->home_a(), base, violations[v]);
      const auto audit = jarvis_->Audit(injected);
      ++total;
      if (audit.violations > 0) ++flagged;
    }
  }
  EXPECT_EQ(flagged, total) << "every malicious episode must be flagged";
}

TEST_F(EndToEnd, FalsePositiveEvaluationSmallScale) {
  // Paper Section VI-C at reduced scale: benign anomalous episodes after
  // the learning phase are overwhelmingly classified benign.
  sim::AnomalyGenerator anomalies(testbed_->home_a(), 555);
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  556);
  const auto generator = testbed_->home_a_generator();
  const auto base = resident.SimulateDay(generator.Generate(25),
                                         resident.OvernightState(), 21.0);

  // Human errors happen while someone is home: use an at-home context.
  fsm::StateVector context = base.episode.initial_state();
  context[0] = *testbed_->home_a().device(0).FindState("unlocked");
  int false_positives = 0;
  const int trials = 150;
  for (int i = 0; i < trials; ++i) {
    const auto instance = anomalies.Generate(context);
    const auto verdict =
        jarvis_->learner().Classify(context, instance.action, instance.minute);
    if (verdict == spl::Verdict::kViolation) ++false_positives;
  }
  const double fp_rate = static_cast<double>(false_positives) / trials;
  EXPECT_LT(fp_rate, 0.1) << "paper reports 0.8% false positives";
}

TEST_F(EndToEnd, RocCurveIsStronglySeparable) {
  // Fig. 5 analogue: benign anomalies vs malicious transitions by ANN
  // benign-score.
  sim::AnomalyGenerator anomalies(testbed_->home_a(), 777);
  const auto violations = testbed_->BuildViolations();
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  state[0] = *testbed_->home_a().device(0).FindState("unlocked");

  std::vector<double> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 100; ++i) {
    const auto instance = anomalies.Generate(state);
    scores.push_back(jarvis_->learner().BenignScore(
        {state, instance.action, instance.minute}));
    labels.push_back(true);
  }
  for (std::size_t v = 0; v < violations.size(); v += 2) {
    scores.push_back(jarvis_->learner().BenignScore(
        {violations[v].state, violations[v].action, violations[v].minute}));
    labels.push_back(false);
  }
  const double auc = util::RocAuc(util::RocCurve(scores, labels));
  EXPECT_GT(auc, 0.95);
}

TEST_F(EndToEnd, OptimizedDayBeatsNormalOnFocusedMetric) {
  // Fig. 6 analogue at one point: f_energy = 0.9 must cut energy use well
  // below normal behavior while committing zero violations.
  const sim::DayTrace day = testbed_->home_b_data().Day(42);
  const auto plan =
      jarvis_->OptimizeDay(day, rl::RewardWeights::Sweep("energy", 0.9));
  EXPECT_LT(plan.optimized_metrics.energy_kwh,
            plan.normal_metrics.energy_kwh * 0.8);
  EXPECT_EQ(plan.violations, 0u);
}

TEST_F(EndToEnd, EventBusPipelineFeedsJarvis) {
  // Publish resident events through the bus; the logger app's log is then
  // parsed into learning episodes via LearnFromEvents.
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  31, sim::BehaviorConfig{0.0, 1});
  const auto generator = testbed_->home_a_generator();
  const auto trace = resident.SimulateDay(generator.Generate(0),
                                          resident.OvernightState(), 21.0);

  events::EventBus bus;
  events::LoggerApp logger(bus);
  for (const auto& event : trace.events) bus.Publish(event);
  EXPECT_EQ(logger.size(), trace.events.size());

  // Round-trip through the on-disk format.
  std::size_t dropped = 0;
  const auto reloaded = events::LoggerApp::ParseLog(logger.DumpLog(), &dropped);
  EXPECT_EQ(dropped, 0u);

  core::JarvisConfig config;
  core::Jarvis fresh(testbed_->home_a(), config);
  const std::size_t episodes =
      fresh.LearnFromEvents(reloaded, resident.OvernightState(),
                            util::SimTime(0), testbed_->BuildTrainingSet());
  EXPECT_EQ(episodes, 1u);
  EXPECT_TRUE(fresh.learned());
}

TEST_F(EndToEnd, FunctionalitySweepSmall) {
  // One-point sweep through the public API used by the benches. Two
  // stratified days (winter + summer); on deep-winter days the chi-balanced
  // comfort dis-utility makes Jarvis heat properly, so the energy win comes
  // from the mild day and from not wasting — allow a modest margin rather
  // than a strict beat on this tiny sample.
  core::SweepConfig config;
  config.focus = "energy";
  config.f_values = {0.9};
  config.days = 2;
  const auto points =
      core::FunctionalitySweep(*jarvis_, testbed_->home_b_data(), config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].violations, 0u);
  EXPECT_LT(points[0].jarvis_mean, points[0].normal_mean * 1.5);
}

}  // namespace
}  // namespace jarvis
