// Chaos suite: sweeps fault schedules over the full event -> parser -> SPL
// -> constrained-DQN pipeline and checks the graceful-degradation contract:
// no crashes, zero committed safety violations, bounded metric drift, exact
// counter accounting against injected ground truth, and bit-for-bit
// baseline reproduction when every fault rate is zero.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/jarvis.h"
#include "core/online_monitor.h"
#include "faults/injector.h"
#include "sim/testbed.h"

namespace jarvis::core {
namespace {

faults::FaultSpec Spec(faults::FaultKind kind, double rate,
                       int delay_minutes = 5) {
  faults::FaultSpec spec;
  spec.kind = kind;
  spec.rate = rate;
  spec.delay_minutes = delay_minutes;
  return spec;
}

struct ChaosOutcome {
  DayPlan plan;
  HealthReport health;
  std::size_t faulted_events = 0;
  std::size_t monitor_events = 0;
};

class ChaosFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 800;
    testbed_ = new sim::Testbed(config);
    const auto traces = testbed_->HomeAContiguousTraces(2);
    initial_ = new fsm::StateVector(traces.front().episode.initial_state());
    events_ = new std::vector<events::Event>();
    for (const auto& trace : traces) {
      events_->insert(events_->end(), trace.events.begin(),
                      trace.events.end());
    }
    training_ = new std::vector<sim::LabeledSample>(
        testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete training_;
    delete events_;
    delete initial_;
    delete testbed_;
    training_ = nullptr;
    events_ = nullptr;
    initial_ = nullptr;
    testbed_ = nullptr;
  }

  // Full pipeline under one schedule: inject -> learn from the faulted
  // stream -> optimize a day -> stream the faulted events through the
  // fail-safe monitor -> collect health.
  static ChaosOutcome RunPipeline(const faults::FaultSchedule& schedule) {
    faults::FaultInjector injector(schedule);
    const auto faulted = injector.Apply(*events_);

    JarvisConfig config;
    config.trainer.episodes = 3;
    config.restarts = 1;
    config.parse_drop_budget = 0.9;
    config.spl.min_episode_fraction = 0.25;
    Jarvis jarvis(testbed_->home_a(), config);
    jarvis.LearnFromEvents(faulted, *initial_, util::SimTime(0), *training_);
    jarvis.NoteInjectedFaults(injector.counters());

    ChaosOutcome outcome;
    outcome.plan =
        jarvis.OptimizeDay(testbed_->home_b_data().Day(5), rl::RewardWeights{});

    OnlineMonitor monitor(testbed_->home_a(), jarvis.learner(), *initial_);
    for (const auto& event : faulted) monitor.Consume(event);
    jarvis.NoteMonitor(monitor);

    outcome.health = jarvis.Health();
    outcome.faulted_events = faulted.size();
    outcome.monitor_events = monitor.events_consumed();
    // Injected ground truth must round-trip into the health report exactly.
    EXPECT_EQ(outcome.health.injected, injector.counters());
    return outcome;
  }

  static void ExpectDegradedButSafe(const ChaosOutcome& outcome) {
    // Zero committed safety violations: the constrained policy never acts
    // off-whitelist no matter how degraded its learning input was.
    EXPECT_EQ(outcome.plan.violations, 0u);
    EXPECT_EQ(outcome.plan.train.episode_rewards.size(), 3u);
    EXPECT_TRUE(std::isfinite(outcome.plan.train.greedy_reward));
    // Bounded metric drift: a policy learnt from a degraded stream may be
    // worse, but not unboundedly so.
    EXPECT_GT(outcome.plan.optimized_metrics.energy_kwh, 0.0);
    EXPECT_LE(outcome.plan.optimized_metrics.energy_kwh,
              outcome.plan.normal_metrics.energy_kwh * 2.0);
    // Accounting: the parser saw exactly the faulted stream, the monitor
    // consumed all of it, and both learning days were offered.
    EXPECT_EQ(outcome.health.parse.events_seen, outcome.faulted_events);
    EXPECT_EQ(outcome.monitor_events, outcome.faulted_events);
    EXPECT_EQ(outcome.health.learn.episodes_offered, 2u);
    EXPECT_GT(outcome.health.learn.episodes_used, 0u);
    EXPECT_GT(outcome.health.injected.total(), 0u);
  }

  static sim::Testbed* testbed_;
  static fsm::StateVector* initial_;
  static std::vector<events::Event>* events_;
  static std::vector<sim::LabeledSample>* training_;
};

sim::Testbed* ChaosFixture::testbed_ = nullptr;
fsm::StateVector* ChaosFixture::initial_ = nullptr;
std::vector<events::Event>* ChaosFixture::events_ = nullptr;
std::vector<sim::LabeledSample>* ChaosFixture::training_ = nullptr;

TEST_F(ChaosFixture, ZeroFaultRateReproducesBaselineExactly) {
  const ChaosOutcome baseline = RunPipeline({});

  faults::FaultSchedule zero;
  zero.seed = 1234;
  for (const auto kind :
       {faults::FaultKind::kDrop, faults::FaultKind::kDuplicate,
        faults::FaultKind::kDelay, faults::FaultKind::kReorder,
        faults::FaultKind::kCorruptField, faults::FaultKind::kDeviceOffline,
        faults::FaultKind::kDeviceFlap, faults::FaultKind::kStuckSensor}) {
    faults::FaultSpec spec;
    spec.kind = kind;
    spec.rate = 0.0;
    zero.specs.push_back(spec);
  }
  const ChaosOutcome reproduced = RunPipeline(zero);

  // A schedule whose every rate is zero is a no-op end to end: the same
  // stream, the same learnt policies, the same trained plan, bit for bit.
  EXPECT_EQ(reproduced.faulted_events, events_->size());
  EXPECT_EQ(reproduced.health.injected.total(), 0u);
  EXPECT_EQ(reproduced.plan.train.episode_rewards,
            baseline.plan.train.episode_rewards);
  EXPECT_EQ(reproduced.plan.train.greedy_reward,
            baseline.plan.train.greedy_reward);
  EXPECT_EQ(reproduced.plan.optimized_metrics.energy_kwh,
            baseline.plan.optimized_metrics.energy_kwh);
  EXPECT_EQ(reproduced.plan.optimized_metrics.cost_usd,
            baseline.plan.optimized_metrics.cost_usd);
  EXPECT_EQ(reproduced.plan.violations, 0u);
  EXPECT_EQ(baseline.plan.violations, 0u);
  EXPECT_EQ(reproduced.health.parse.events_dropped(),
            baseline.health.parse.events_dropped());
}

TEST_F(ChaosFixture, LossyTransportSchedule) {
  faults::FaultSchedule schedule;
  schedule.seed = 7;
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.10));
  schedule.specs.push_back(
      Spec(faults::FaultKind::kDuplicate, 0.10));
  schedule.specs.push_back(Spec(faults::FaultKind::kDelay, 0.15, 7));
  schedule.specs.push_back(
      Spec(faults::FaultKind::kReorder, 0.05));
  ExpectDegradedButSafe(RunPipeline(schedule));
}

TEST_F(ChaosFixture, CorruptedSensorsSchedule) {
  faults::FaultSchedule schedule;
  schedule.seed = 8;
  schedule.specs.push_back(
      Spec(faults::FaultKind::kCorruptField, 0.05));
  faults::FaultSpec stuck;
  stuck.kind = faults::FaultKind::kStuckSensor;
  stuck.rate = 0.5;
  stuck.device_label = "temp_sensor";
  stuck.window_end = util::SimTime::FromDayAndMinute(1, 0);
  schedule.specs.push_back(stuck);
  schedule.specs.push_back(
      Spec(faults::FaultKind::kDeviceFlap, 0.2));
  ExpectDegradedButSafe(RunPipeline(schedule));
}

TEST_F(ChaosFixture, DeviceOutageSchedule) {
  faults::FaultSchedule schedule;
  schedule.seed = 9;
  faults::FaultSpec outage;
  outage.kind = faults::FaultKind::kDeviceOffline;
  outage.rate = 1.0;
  outage.device_label = "light";
  outage.window_start = util::SimTime::FromDayAndMinute(0, 12 * 60);
  outage.window_end = util::SimTime::FromDayAndMinute(1, 0);
  schedule.specs.push_back(outage);
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.05));
  ExpectDegradedButSafe(RunPipeline(schedule));
}

TEST_F(ChaosFixture, KitchenSinkSchedule) {
  faults::FaultSchedule schedule;
  schedule.seed = 10;
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.08));
  schedule.specs.push_back(
      Spec(faults::FaultKind::kDuplicate, 0.08));
  schedule.specs.push_back(Spec(faults::FaultKind::kDelay, 0.10, 11));
  schedule.specs.push_back(
      Spec(faults::FaultKind::kReorder, 0.05));
  schedule.specs.push_back(
      Spec(faults::FaultKind::kCorruptField, 0.04));
  schedule.specs.push_back(
      Spec(faults::FaultKind::kDeviceFlap, 0.15));
  faults::FaultSpec stuck;
  stuck.kind = faults::FaultKind::kStuckSensor;
  stuck.rate = 0.3;
  stuck.device_label = "door_sensor";
  schedule.specs.push_back(stuck);
  const ChaosOutcome outcome = RunPipeline(schedule);
  ExpectDegradedButSafe(outcome);
  EXPECT_TRUE(outcome.health.degraded());
  EXPECT_GT(outcome.health.parse.events_dropped(), 0u);
}

TEST_F(ChaosFixture, ObsCountersMirrorInjectedGroundTruth) {
  faults::FaultSchedule schedule;
  schedule.seed = 11;
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.10));
  schedule.specs.push_back(Spec(faults::FaultKind::kDuplicate, 0.08));
  schedule.specs.push_back(Spec(faults::FaultKind::kDelay, 0.12, 9));
  schedule.specs.push_back(Spec(faults::FaultKind::kReorder, 0.05));
  schedule.specs.push_back(Spec(faults::FaultKind::kCorruptField, 0.05));
  schedule.specs.push_back(Spec(faults::FaultKind::kDeviceFlap, 0.10));

  obs::Registry registry;
  faults::FaultInjector injector(schedule);
  injector.SetMetrics(&registry);
  injector.Apply(*events_);

  const auto expect_mirrored = [&registry, &injector] {
    const obs::MetricsSnapshot snapshot = registry.TakeSnapshot();
    const faults::FaultCounters& truth = injector.counters();
    EXPECT_EQ(snapshot.CounterValue("faults.injector.dropped"),
              truth.dropped);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.duplicated"),
              truth.duplicated);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.delayed"),
              truth.delayed);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.reordered"),
              truth.reordered);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.corrupted"),
              truth.corrupted);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.offline_drops"),
              truth.offline_drops);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.flap_reports"),
              truth.flap_reports);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.stuck_reports"),
              truth.stuck_reports);
    EXPECT_EQ(snapshot.CounterValue("faults.injector.publish_failures"),
              truth.publish_failures);
  };
  expect_mirrored();
  EXPECT_GT(injector.counters().total(), 0u);

  // A second Apply accumulates in both ledgers identically (Apply re-seeds
  // per call, so the second pass injects the same faults again).
  const faults::FaultCounters after_first = injector.counters();
  injector.Apply(*events_);
  EXPECT_EQ(injector.counters().total(), 2 * after_first.total());
  expect_mirrored();

  // ResetCounters clears the injector's ledger but obs counters are
  // monotonic history — subsequent deltas keep accumulating on top.
  injector.ResetCounters();
  const obs::MetricsSnapshot before = registry.TakeSnapshot();
  injector.Apply(*events_);
  const obs::MetricsSnapshot after = registry.TakeSnapshot();
  EXPECT_EQ(after.CounterValue("faults.injector.dropped"),
            before.CounterValue("faults.injector.dropped") +
                injector.counters().dropped);
}

TEST_F(ChaosFixture, InstrumentedInjectionIsBitIdentical) {
  // Wiring metrics must not consume RNG draws or otherwise perturb the
  // faulted stream.
  faults::FaultSchedule schedule;
  schedule.seed = 12;
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.15));
  schedule.specs.push_back(Spec(faults::FaultKind::kCorruptField, 0.05));

  faults::FaultInjector plain(schedule);
  faults::FaultInjector wired(schedule);
  obs::Registry registry;
  wired.SetMetrics(&registry);

  const auto expected = plain.Apply(*events_);
  const auto actual = wired.Apply(*events_);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].date, expected[i].date) << "event " << i;
    EXPECT_EQ(actual[i].device_label, expected[i].device_label)
        << "event " << i;
    EXPECT_EQ(actual[i].attribute_value, expected[i].attribute_value)
        << "event " << i;
    EXPECT_EQ(actual[i].command, expected[i].command) << "event " << i;
  }
  EXPECT_EQ(plain.counters(), wired.counters());
}

}  // namespace
}  // namespace jarvis::core
