#include "fsm/authorization.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace jarvis::fsm {
namespace {

class AuthFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    home_ = auth_.AddLocation("home");
    office_ = auth_.AddLocation("office");
    kitchen_ = auth_.AddGroup("kitchen", home_);
    desk_ = auth_.AddGroup("desk", office_);
    manual_ = auth_.AddApp("manual");
    lights_app_ = auth_.AddApp("lights");
    alice_ = auth_.AddUser("alice");
    bob_ = auth_.AddUser("bob");
    auth_.PlaceDevice(/*device=*/0, home_, kitchen_);
    auth_.PlaceDevice(/*device=*/1, office_, desk_);
  }

  AuthorizationModel auth_;
  LocationId home_, office_;
  GroupId kitchen_, desk_;
  AppId manual_, lights_app_;
  UserId alice_, bob_;
};

TEST_F(AuthFixture, ManualAppIsAppZero) { EXPECT_EQ(manual_, kManualApp); }

TEST_F(AuthFixture, DefaultDeny) {
  EXPECT_FALSE(auth_.UserMayUseApp(alice_, lights_app_));
  EXPECT_FALSE(auth_.AppMayActOnDevice(lights_app_, 0));
  EXPECT_FALSE(auth_.UserMayAccessDevice(alice_, 0));
  EXPECT_FALSE(auth_.Authorize(alice_, lights_app_, 0));
}

TEST_F(AuthFixture, FullChainGrantsAuthorize) {
  auth_.GrantUserApp(alice_, lights_app_);
  auth_.GrantAppDevice(lights_app_, 0);
  auth_.GrantUserLocation(alice_, home_);
  EXPECT_TRUE(auth_.Authorize(alice_, lights_app_, 0));
  // Bob got nothing.
  EXPECT_FALSE(auth_.Authorize(bob_, lights_app_, 0));
}

TEST_F(AuthFixture, PartialChainsDeny) {
  // Missing app-device subscription.
  auth_.GrantUserApp(alice_, lights_app_);
  auth_.GrantUserLocation(alice_, home_);
  EXPECT_FALSE(auth_.Authorize(alice_, lights_app_, 0));
  // Missing container access: device 1 is in the office.
  auth_.GrantAppDevice(lights_app_, 1);
  EXPECT_FALSE(auth_.Authorize(alice_, lights_app_, 1));
  auth_.GrantUserLocation(alice_, office_);
  auth_.GrantUserApp(alice_, lights_app_);
  EXPECT_TRUE(auth_.Authorize(alice_, lights_app_, 1));
}

TEST_F(AuthFixture, UnplacedDeviceInaccessible) {
  auth_.GrantUserLocation(alice_, home_);
  EXPECT_FALSE(auth_.UserMayAccessDevice(alice_, 99));
  EXPECT_FALSE(auth_.PlacementOf(99).has_value());
  const auto placement = auth_.PlacementOf(0);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->location, home_);
  EXPECT_EQ(placement->group, kitchen_);
}

TEST_F(AuthFixture, GroupMustBelongToLocation) {
  EXPECT_THROW(auth_.AddGroup("bad", 99), util::CheckError);
  EXPECT_THROW(auth_.PlaceDevice(2, home_, desk_), util::CheckError);
  EXPECT_THROW(auth_.PlaceDevice(2, 99, kitchen_), util::CheckError);
}

TEST_F(AuthFixture, RegistriesEnumerate) {
  EXPECT_EQ(auth_.users().size(), 2u);
  EXPECT_EQ(auth_.apps().size(), 2u);
  EXPECT_EQ(auth_.locations().size(), 2u);
  EXPECT_EQ(auth_.groups().size(), 2u);
  EXPECT_EQ(auth_.users()[0].name, "alice");
  EXPECT_EQ(auth_.groups()[1].location, office_);
}

TEST_F(AuthFixture, GrantIsIdempotent) {
  auth_.GrantUserApp(alice_, lights_app_);
  auth_.GrantUserApp(alice_, lights_app_);
  EXPECT_TRUE(auth_.UserMayUseApp(alice_, lights_app_));
}

}  // namespace
}  // namespace jarvis::fsm
