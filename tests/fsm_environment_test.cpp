#include "fsm/environment.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include "fsm/device_library.h"

namespace jarvis::fsm {
namespace {

TEST(EnvironmentFsm, ApplyUsesPerDeviceTransitions) {
  const EnvironmentFsm fsm = BuildExampleHome();
  StateVector state = {0, 0, 0, 2, 2};  // locked, sensing, light off,
                                        // thermostat off, temp optimal
  ActionVector action(5, kNoAction);
  action[2] = *fsm.device(2).FindAction("power_on");
  const StateVector next = fsm.Apply(state, action);
  EXPECT_EQ(next[2], *fsm.device(2).FindState("on"));
  // Everything else untouched.
  EXPECT_EQ(next[0], state[0]);
  EXPECT_EQ(next[3], state[3]);
}

TEST(EnvironmentFsm, ConstraintFiveAtMostOneChangePerDevice) {
  // Apply executes each device's transition exactly once per interval, so
  // a device changes state at most once even if its action would chain.
  const EnvironmentFsm fsm = BuildExampleHome();
  StateVector state = {1, 0, 0, 2, 2};  // lock unlocked
  ActionVector action(5, kNoAction);
  action[0] = *fsm.device(0).FindAction("lock");
  const StateVector next = fsm.Apply(state, action);
  EXPECT_EQ(next[0], *fsm.device(0).FindState("locked_outside"));
}

TEST(EnvironmentFsm, ValidationRejectsBadShapes) {
  const EnvironmentFsm fsm = BuildExampleHome();
  EXPECT_THROW(fsm.ValidateState({0, 0}), util::CheckError);
  EXPECT_THROW(fsm.ValidateState({9, 0, 0, 0, 0}), util::CheckError);
  EXPECT_THROW(fsm.ValidateAction({0}), util::CheckError);
  ActionVector bad(5, kNoAction);
  bad[1] = 7;
  EXPECT_THROW(fsm.ValidateAction(bad), util::CheckError);
  EXPECT_THROW(fsm.Apply({0, 0, 0, 0, 0}, bad), util::CheckError);
}

TEST(EnvironmentFsm, DeviceLookupByLabel) {
  const EnvironmentFsm fsm = BuildExampleHome();
  EXPECT_EQ(fsm.DeviceIdByLabel("thermostat"), 3);
  EXPECT_EQ(fsm.DeviceByLabel("light").label(), "light");
  EXPECT_THROW(fsm.DeviceByLabel("toaster"), util::CheckError);
  EXPECT_THROW(fsm.device(99), util::CheckError);
}

TEST(EnvironmentFsm, SingleDeviceActionsEnumerate) {
  const EnvironmentFsm fsm = BuildExampleHome();
  const StateVector state = {0, 0, 0, 2, 2};
  const auto actions = fsm.SingleDeviceActions(state);
  // 1 all-no-op + sum of action counts (4+2+2+4+2 = 14).
  EXPECT_EQ(actions.size(), 15u);
  // First is all-no-op.
  for (ActionIndex a : actions[0]) EXPECT_EQ(a, kNoAction);
  // Each subsequent action touches exactly one device.
  for (std::size_t i = 1; i < actions.size(); ++i) {
    int touched = 0;
    for (ActionIndex a : actions[i]) touched += (a != kNoAction) ? 1 : 0;
    EXPECT_EQ(touched, 1);
  }
}

class ResolveRequestsFixture : public ::testing::Test {
 protected:
  ResolveRequestsFixture() : fsm_(BuildExampleHome(/*user_count=*/2)) {}
  EnvironmentFsm fsm_;
};

TEST_F(ResolveRequestsFixture, AuthorizedManualRequestAccepted) {
  std::vector<RequestOutcome> outcomes;
  const auto action = fsm_.ResolveRequests(
      {{/*user=*/0, kManualApp, /*device=*/2,
        *fsm_.device(2).FindAction("power_on")}},
      &outcomes);
  EXPECT_EQ(action[2], *fsm_.device(2).FindAction("power_on"));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reason, RejectReason::kAccepted);
}

TEST_F(ResolveRequestsFixture, ConstraintFourFirstComeFirstServed) {
  // Two apps fight over the light in one interval; the first wins.
  std::vector<RequestOutcome> outcomes;
  const ActionIndex on = *fsm_.device(2).FindAction("power_on");
  const ActionIndex off = *fsm_.device(2).FindAction("power_off");
  const auto action = fsm_.ResolveRequests(
      {{0, kManualApp, 2, on}, {1, kManualApp, 2, off}}, &outcomes);
  EXPECT_EQ(action[2], on);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].reason, RejectReason::kAccepted);
  EXPECT_EQ(outcomes[1].reason, RejectReason::kDeviceBusy);
}

TEST_F(ResolveRequestsFixture, ConstraintTwoUserAppSubscription) {
  // App id 1 ("unlock-door-on-auth-user") exists; user 0 is subscribed in
  // BuildHome, so fabricate an unsubscribed user id.
  std::vector<RequestOutcome> outcomes;
  const auto action = fsm_.ResolveRequests(
      {{/*user=*/7, /*app=*/1, /*device=*/0,
        *fsm_.device(0).FindAction("unlock")}},
      &outcomes);
  EXPECT_EQ(action[0], kNoAction);
  EXPECT_EQ(outcomes[0].reason, RejectReason::kUnauthorizedUserApp);
}

TEST_F(ResolveRequestsFixture, ConstraintThreeAppDeviceSubscription) {
  // App 2 (maintain-optimal-temperature) may not act on the lock.
  std::vector<RequestOutcome> outcomes;
  const auto action = fsm_.ResolveRequests(
      {{0, /*app=*/2, /*device=*/0, *fsm_.device(0).FindAction("unlock")}},
      &outcomes);
  EXPECT_EQ(action[0], kNoAction);
  EXPECT_EQ(outcomes[0].reason, RejectReason::kUnauthorizedAppDevice);
}

TEST_F(ResolveRequestsFixture, UnknownDeviceAndInvalidAction) {
  std::vector<RequestOutcome> outcomes;
  fsm_.ResolveRequests({{0, kManualApp, 42, 0}, {0, kManualApp, 2, 9}},
                       &outcomes);
  EXPECT_EQ(outcomes[0].reason, RejectReason::kUnknownDevice);
  EXPECT_EQ(outcomes[1].reason, RejectReason::kInvalidAction);
}

TEST_F(ResolveRequestsFixture, NoActionRequestsAccepted) {
  std::vector<RequestOutcome> outcomes;
  const auto action =
      fsm_.ResolveRequests({{0, kManualApp, 2, kNoAction}}, &outcomes);
  EXPECT_EQ(action[2], kNoAction);
  EXPECT_EQ(outcomes[0].reason, RejectReason::kAccepted);
  // A no-action request does not make the device busy.
  const auto action2 = fsm_.ResolveRequests(
      {{0, kManualApp, 2, kNoAction},
       {0, kManualApp, 2, *fsm_.device(2).FindAction("power_on")}},
      nullptr);
  EXPECT_NE(action2[2], kNoAction);
}

TEST(EnvironmentFsmConstruction, RejectsEmptyAndMisnumbered) {
  EXPECT_THROW(EnvironmentFsm({}, AuthorizationModel{}),
               util::CheckError);
  std::vector<Device> devices;
  devices.push_back(MakeSmartLight(3));  // id 3 but index 0
  EXPECT_THROW(EnvironmentFsm(std::move(devices), AuthorizationModel{}),
               util::CheckError);
}

TEST(EnvironmentFsm, RejectReasonNamesAreStable) {
  EXPECT_EQ(RejectReasonName(RejectReason::kAccepted), "accepted");
  EXPECT_EQ(RejectReasonName(RejectReason::kDeviceBusy),
            "device-already-acted-on");
}

}  // namespace
}  // namespace jarvis::fsm
