#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/snapshot.h"
#include "runtime/thread_pool.h"

namespace jarvis::obs {
namespace {

TEST(Registry, CounterIncrementAndSnapshot) {
  Registry registry;
  Counter* counter = registry.GetCounter("a.b.c");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42u);

  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.CounterValue("a.b.c"), 42u);
  EXPECT_TRUE(snapshot.HasCounter("a.b.c"));
  EXPECT_FALSE(snapshot.HasCounter("missing"));
  EXPECT_THROW(snapshot.CounterValue("missing"), std::out_of_range);
  EXPECT_THROW(snapshot.GaugeValue("missing"), std::out_of_range);
  EXPECT_THROW(snapshot.FindHistogram("missing"), std::out_of_range);
}

TEST(Registry, GetReturnsSameInstrumentForSameName) {
  Registry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  b->Increment();
  EXPECT_EQ(a->Value(), 2u);
  EXPECT_NE(a, registry.GetCounter("y"));
}

TEST(Registry, ReRegistrationMismatchThrows) {
  Registry registry;
  registry.GetCounter("stable", Determinism::kStable);
  EXPECT_THROW(registry.GetCounter("stable", Determinism::kTiming),
               std::invalid_argument);
  registry.GetHistogram("hist", {1.0, 2.0});
  EXPECT_THROW(registry.GetHistogram("hist", {1.0, 3.0}),
               std::invalid_argument);
  // Same name + same shape is fine.
  EXPECT_NO_THROW(registry.GetHistogram("hist", {1.0, 2.0}));
}

TEST(Registry, GaugeSetAndAdd) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("queue.depth");
  gauge->Set(5.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 5.0);
  gauge->Add(2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 6.5);
  EXPECT_DOUBLE_EQ(registry.TakeSnapshot().GaugeValue("queue.depth"), 6.5);
}

TEST(Registry, HistogramBucketBoundaries) {
  Registry registry;
  // Prometheus "le" convention: bucket i counts x <= upper_bounds[i];
  // the last (implicit) bucket is +inf.
  Histogram* hist = registry.GetHistogram("h", {1.0, 5.0, 10.0});
  hist->Observe(0.5);    // bucket 0 (<= 1)
  hist->Observe(1.0);    // bucket 0, boundary is inclusive
  hist->Observe(1.001);  // bucket 1
  hist->Observe(5.0);    // bucket 1
  hist->Observe(10.0);   // bucket 2
  hist->Observe(99.0);   // overflow bucket (+inf)

  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  const HistogramSample& sample = snapshot.FindHistogram("h");
  EXPECT_EQ(sample.count, 6u);
  EXPECT_DOUBLE_EQ(sample.sum, 0.5 + 1.0 + 1.001 + 5.0 + 10.0 + 99.0);
  ASSERT_EQ(sample.bucket_counts.size(), 4u);
  EXPECT_EQ(sample.bucket_counts[0], 2u);
  EXPECT_EQ(sample.bucket_counts[1], 2u);
  EXPECT_EQ(sample.bucket_counts[2], 1u);
  EXPECT_EQ(sample.bucket_counts[3], 1u);
}

TEST(Registry, HistogramIgnoresNan) {
  Registry registry;
  Histogram* hist = registry.GetHistogram("h", {1.0});
  hist->Observe(std::numeric_limits<double>::quiet_NaN());
  hist->Observe(0.5);
  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  const HistogramSample& sample = snapshot.FindHistogram("h");
  EXPECT_EQ(sample.count, 1u);
  EXPECT_EQ(sample.nan_ignored, 1u);
  EXPECT_DOUBLE_EQ(sample.sum, 0.5);
}

TEST(Registry, HistogramRejectsBadBounds) {
  Registry registry;
  EXPECT_THROW(registry.GetHistogram("a", {}), std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("b", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("c", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(
      registry.GetHistogram("d",
                            {1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(Registry, DeterministicOnlyFiltersTimingMetrics) {
  Registry registry;
  registry.GetCounter("stable.counter")->Increment();
  registry.GetCounter("timing.counter", Determinism::kTiming)->Increment();
  registry.GetGauge("timing.gauge", Determinism::kTiming)->Set(1.0);
  registry.GetTimerUs("some.latency")->Observe(123.0);

  const MetricsSnapshot filtered = registry.TakeSnapshot().DeterministicOnly();
  EXPECT_TRUE(filtered.HasCounter("stable.counter"));
  EXPECT_FALSE(filtered.HasCounter("timing.counter"));
  EXPECT_TRUE(filtered.gauges.empty());
  EXPECT_TRUE(filtered.histograms.empty());
}

TEST(Registry, SnapshotMerge) {
  Registry a;
  Registry b;
  a.GetCounter("shared")->Increment(2);
  b.GetCounter("shared")->Increment(3);
  a.GetCounter("only_a")->Increment();
  b.GetGauge("g")->Set(1.5);
  a.GetHistogram("h", {1.0, 2.0})->Observe(0.5);
  b.GetHistogram("h", {1.0, 2.0})->Observe(1.5);

  const MetricsSnapshot merged =
      MetricsSnapshot::Merge({a.TakeSnapshot(), b.TakeSnapshot()});
  EXPECT_EQ(merged.CounterValue("shared"), 5u);
  EXPECT_EQ(merged.CounterValue("only_a"), 1u);
  EXPECT_DOUBLE_EQ(merged.GaugeValue("g"), 1.5);
  const HistogramSample& hist = merged.FindHistogram("h");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_EQ(hist.bucket_counts[0], 1u);
  EXPECT_EQ(hist.bucket_counts[1], 1u);

  // Mismatched bounds cannot merge.
  Registry c;
  c.GetHistogram("h", {9.0})->Observe(1.0);
  EXPECT_THROW(MetricsSnapshot::Merge({a.TakeSnapshot(), c.TakeSnapshot()}),
               std::invalid_argument);
}

TEST(Registry, SnapshotSerializesToJsonAndCsv) {
  Registry registry;
  registry.GetCounter("events.parsed")->Increment(7);
  registry.GetGauge("depth")->Set(2.0);
  registry.GetHistogram("lat", {1.0, 10.0})->Observe(3.0);
  const MetricsSnapshot snapshot = registry.TakeSnapshot();

  const std::string json = snapshot.ToJson().Dump();
  EXPECT_NE(json.find("\"events.parsed\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Round-trips through the parser.
  EXPECT_NO_THROW(util::JsonValue::Parse(json));

  const std::string csv = snapshot.ToCsv();
  EXPECT_NE(csv.find("name,kind,le,value,deterministic"), std::string::npos);
  EXPECT_NE(csv.find("events.parsed,counter"), std::string::npos);
  EXPECT_NE(csv.find("+inf"), std::string::npos);
}

TEST(Registry, ScopedTimerObservesAndNullIsNoop) {
  Registry registry;
  Histogram* timer_hist = registry.GetTimerUs("op.us");
  {
    ScopedTimer timer(timer_hist);
  }
  EXPECT_EQ(registry.TakeSnapshot().FindHistogram("op.us").count, 1u);
  {
    ScopedTimer timer(nullptr);  // must not crash or observe anything
  }
  EXPECT_EQ(registry.TakeSnapshot().FindHistogram("op.us").count, 1u);
}

// Exercised under TSan in CI (label `runtime`): concurrent increments on
// one counter from pool workers must be race-free and lossless.
TEST(Registry, ConcurrentIncrementsFromThreadPool) {
  Registry registry;
  Counter* counter = registry.GetCounter("hot");
  Gauge* gauge = registry.GetGauge("accum");
  Histogram* hist = registry.GetHistogram("obs", {100.0, 1000.0});

  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  {
    runtime::ThreadPool pool(4);
    for (std::size_t t = 0; t < kTasks; ++t) {
      pool.Submit([counter, gauge, hist] {
        for (std::size_t i = 0; i < kPerTask; ++i) {
          counter->Increment();
          gauge->Add(1.0);
          hist->Observe(static_cast<double>(i));
        }
      });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter->Value(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kTasks * kPerTask));
  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  const HistogramSample& sample = snapshot.FindHistogram("obs");
  EXPECT_EQ(sample.count, kTasks * kPerTask);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : sample.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, sample.count);
}

// Registering new instruments while another thread snapshots must also be
// race-free (both paths lock the registry map).
TEST(Registry, ConcurrentRegistrationAndSnapshot) {
  Registry registry;
  {
    runtime::ThreadPool pool(4);
    for (int t = 0; t < 8; ++t) {
      pool.Submit([&registry, t] {
        for (int i = 0; i < 200; ++i) {
          registry.GetCounter("c." + std::to_string(t))->Increment();
          const MetricsSnapshot snapshot = registry.TakeSnapshot();
          (void)snapshot;
        }
      });
    }
    pool.Shutdown();
  }
  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counters.size(), 8u);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(snapshot.CounterValue("c." + std::to_string(t)), 200u);
  }
}

}  // namespace
}  // namespace jarvis::obs
