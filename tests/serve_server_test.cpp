// Server admission + drain over a loopback transport: hostile bytes get
// one error response each and never kill serving, overload rejections are
// deterministic and explicit, and a drain under load answers every single
// request — accepted ones with results, refused ones with overloaded /
// draining — losing none. Carries the `runtime` label so TSan races the
// worker pool, the loopback queues, and the per-tenant suggestion locks.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fsm/device_library.h"
#include "runtime/fleet.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "sim/resident.h"
#include "util/io.h"
#include "util/json.h"

namespace jarvis::serve {
namespace {

runtime::FleetConfig TinyFleetConfig() {
  runtime::FleetConfig config;
  config.tenants = 1;
  config.jobs = 1;
  config.fleet_seed = 2026;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = 2;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 2;
  return config;
}

// One trained single-tenant fleet shared by the suite (read-only here).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    home_ = new fsm::EnvironmentFsm(fsm::BuildFullHome());
    fleet_ = new runtime::Fleet(*home_, TinyFleetConfig());
    runtime::SimulatedWorkloadOptions workload;
    workload.learning_days = 1;
    workload.benign_anomaly_samples = 100;
    fleet_->Run(runtime::SimulatedWorkloadFactory(*home_, workload));
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete home_;
    fleet_ = nullptr;
    home_ = nullptr;
  }

  static std::string PingRequest(int id) {
    return "{\"id\": " + std::to_string(id) + ", \"type\": \"ping\"}";
  }

  // Reads frames from `transport` until EOF; returns parsed payloads.
  static std::vector<util::JsonValue> ReadAll(FramedTransport& transport) {
    std::vector<util::JsonValue> responses;
    std::string payload;
    for (;;) {
      const auto result = transport.ReadPayload(&payload);
      if (result == FramedTransport::ReadResult::kClosed) break;
      if (result == FramedTransport::ReadResult::kPayload) {
        responses.push_back(util::JsonValue::Parse(payload));
      }
    }
    return responses;
  }

  static fsm::EnvironmentFsm* home_;
  static runtime::Fleet* fleet_;
};

fsm::EnvironmentFsm* ServerTest::home_ = nullptr;
runtime::Fleet* ServerTest::fleet_ = nullptr;

TEST_F(ServerTest, HostileBytesGetErrorResponsesThenServingContinues) {
  DispatcherOptions options;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  obs::Registry registry;
  Server server(dispatcher, ServerConfig{}, &registry);

  LoopbackPair pair = MakeLoopbackPair();
  ConnectionStats stats;
  std::thread serving(
      [&] { stats = server.Serve(*pair.server); });

  // Byte-level hostility: garbage, an oversized length prefix, a frame
  // with a corrupted payload — then a perfectly good ping.
  pair.client->WriteRawBytes("totally not a frame");
  std::string corrupt = EncodeFrame("payload");
  corrupt[corrupt.size() - 1] ^= 0x40;
  pair.client->WriteRawBytes(corrupt);
  pair.client->WritePayload(PingRequest(7));
  // Frame-level hostility: valid frames whose payloads are not requests.
  pair.client->WritePayload("}{ not json");
  pair.client->WritePayload(R"({"id": 8, "type": "no_such_type"})");
  pair.client->WritePayload(PingRequest(9));
  pair.client->CloseWrite();
  serving.join();
  pair.server->CloseWrite();

  const std::vector<util::JsonValue> responses = ReadAll(*pair.client);
  // Exactly one response per input: 2 malformed episodes (the garbage run
  // and the corrupt frame), 2 bad requests, 2 pings.
  ASSERT_EQ(responses.size(), 6u);
  std::size_t malformed = 0, bad = 0, ok = 0;
  for (const auto& response : responses) {
    if (ResponseOk(response)) {
      ++ok;
      continue;
    }
    const std::string& code = response.At("error").AsString();
    if (code == kErrMalformedFrame) ++malformed;
    if (code == kErrBadRequest) ++bad;
  }
  EXPECT_EQ(malformed, 2u);
  EXPECT_EQ(bad, 2u);
  EXPECT_EQ(ok, 2u);
  // Stats and registry counters agree with the ground truth.
  EXPECT_EQ(stats.malformed_frames, 2u);
  EXPECT_EQ(stats.bad_requests, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_EQ(registry.GetCounter("serve.malformed_frames")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("serve.bad_requests")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("serve.accepted")->Value(), 2u);
}

TEST_F(ServerTest, MidStreamDisconnectThenANewConnectionServes) {
  DispatcherOptions options;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  Server server(dispatcher, ServerConfig{}, nullptr);

  {
    // The client dies mid-frame: a partial header, then EOF.
    LoopbackPair pair = MakeLoopbackPair();
    pair.client->WriteRawBytes(EncodeFrame("half a frame").substr(0, 7));
    pair.client->CloseWrite();
    const ConnectionStats stats = server.Serve(*pair.server);
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_TRUE(pair.server->truncated_tail());
  }
  {
    // The daemon must shrug and serve the next connection.
    LoopbackPair pair = MakeLoopbackPair();
    pair.client->WritePayload(PingRequest(1));
    pair.client->CloseWrite();
    const ConnectionStats stats = server.Serve(*pair.server);
    EXPECT_EQ(stats.accepted, 1u);
    pair.server->CloseWrite();
    const auto responses = ReadAll(*pair.client);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(ResponseOk(responses[0]));
  }
}

TEST_F(ServerTest, OverloadRejectionsAreDeterministicAndExplicit) {
  DispatcherOptions options;
  options.allow_stall = true;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  ServerConfig config;
  config.workers = 1;       // the stall parks the only worker
  config.queue_capacity = 2;
  obs::Registry registry;
  Server server(dispatcher, config, &registry);

  LoopbackPair pair = MakeLoopbackPair();
  ConnectionStats stats;
  std::thread serving([&] { stats = server.Serve(*pair.server); });

  pair.client->WritePayload(R"({"id": 1, "type": "stall"})");
  // Deterministic overload: wait until the worker has DEQUEUED the stall
  // (parked inside the handler), so the queue is empty and exactly
  // queue_capacity of the following pings are admitted.
  while (dispatcher.stalled_now() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int id = 2; id <= 6; ++id) {
    pair.client->WritePayload(PingRequest(id));
  }
  pair.client->CloseWrite();
  // The serve loop admits/rejects asynchronously: releasing the stall
  // while pings are still being submitted would free the worker to drain
  // the queue mid-burst and admit an extra one. Wait for the third
  // explicit rejection (the live registry counter) before releasing.
  while (registry.GetCounter("serve.rejected_overload")->Value() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dispatcher.ReleaseStalls();
  serving.join();
  pair.server->CloseWrite();

  // stall + 2 queued pings admitted; pings 3..5 rejected explicitly.
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected_overload, 3u);
  EXPECT_EQ(registry.GetCounter("serve.rejected_overload")->Value(), 3u);

  const auto responses = ReadAll(*pair.client);
  ASSERT_EQ(responses.size(), 6u);
  std::map<std::int64_t, std::string> outcome;
  for (const auto& response : responses) {
    outcome[ResponseId(response)] =
        ResponseOk(response) ? "ok" : response.At("error").AsString();
  }
  ASSERT_EQ(outcome.size(), 6u) << "every id answered exactly once";
  EXPECT_EQ(outcome.at(1), "ok");  // the released stall
  std::size_t ok = 0, overloaded = 0;
  for (int id = 2; id <= 6; ++id) {
    if (outcome.at(id) == "ok") ++ok;
    if (outcome.at(id) == kErrOverloaded) ++overloaded;
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(overloaded, 3u);
}

TEST_F(ServerTest, ShutdownRequestStartsDrainAndLaterRequestsAreRefused) {
  DispatcherOptions options;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  Server server(dispatcher, ServerConfig{}, nullptr);

  LoopbackPair pair = MakeLoopbackPair();
  ConnectionStats stats;
  std::thread serving([&] { stats = server.Serve(*pair.server); });

  pair.client->WritePayload(R"({"id": 1, "type": "shutdown"})");
  // Reading the shutdown response guarantees the drain flag is set (the
  // handler fires the callback before the response is written).
  std::string payload;
  ASSERT_EQ(pair.client->ReadPayload(&payload),
            FramedTransport::ReadResult::kPayload);
  EXPECT_TRUE(ResponseOk(util::JsonValue::Parse(payload)));
  EXPECT_TRUE(server.draining());

  pair.client->WritePayload(PingRequest(2));
  ASSERT_EQ(pair.client->ReadPayload(&payload),
            FramedTransport::ReadResult::kPayload);
  const auto refused = util::JsonValue::Parse(payload);
  EXPECT_FALSE(ResponseOk(refused));
  EXPECT_EQ(refused.At("error").AsString(), kErrDraining);
  EXPECT_EQ(ResponseId(refused), 2);

  pair.client->CloseWrite();
  serving.join();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.draining_refused, 1u);
}

TEST_F(ServerTest, DrainUnderLoadAnswersEveryRequestAndFlushes) {
  const std::string dir = testing::TempDir() + "/serve_server_drain";
  util::io::RemoveFile(runtime::Fleet::TenantCheckpointPath(dir, 0));

  DispatcherOptions options;
  options.allow_stall = true;
  options.checkpoint_dir = dir;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 4;
  Server server(dispatcher, config, nullptr);

  LoopbackPair pair = MakeLoopbackPair();
  ConnectionStats stats;
  std::thread serving([&] { stats = server.Serve(*pair.server); });

  // Load phase: a stall pins one worker, then a burst larger than
  // workers + queue guarantees real overload while requests are in flight.
  pair.client->WritePayload(R"({"id": 1, "type": "stall"})");
  while (dispatcher.stalled_now() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int kBurst = 24;
  for (int id = 2; id < 2 + kBurst; ++id) {
    pair.client->WritePayload(PingRequest(id));
  }
  // Drain starts while the stall still holds a worker and pings are still
  // queued — the requests sent after this must be refused, not lost.
  server.RequestDrain();
  const int kLate = 8;
  for (int id = 2 + kBurst; id < 2 + kBurst + kLate; ++id) {
    pair.client->WritePayload(PingRequest(id));
  }
  pair.client->CloseWrite();
  dispatcher.ReleaseStalls();
  serving.join();

  const DrainFlushReport flush = server.Drain();
  pair.server->CloseWrite();
  const auto responses = ReadAll(*pair.client);

  // THE drain pin: one response per request, none lost, each one either a
  // result, an explicit overload, or an explicit draining refusal.
  const std::size_t total = 1 + kBurst + kLate;
  ASSERT_EQ(responses.size(), total);
  std::map<std::int64_t, std::string> outcome;
  std::size_t ok = 0, overloaded = 0, draining = 0;
  for (const auto& response : responses) {
    const std::string verdict =
        ResponseOk(response) ? "ok" : response.At("error").AsString();
    outcome[ResponseId(response)] = verdict;
    if (verdict == "ok") ++ok;
    if (verdict == kErrOverloaded) ++overloaded;
    if (verdict == kErrDraining) ++draining;
  }
  EXPECT_EQ(outcome.size(), total) << "every id answered exactly once";
  EXPECT_EQ(ok + overloaded + draining, total);
  EXPECT_EQ(ok, stats.accepted);
  EXPECT_EQ(overloaded, stats.rejected_overload);
  EXPECT_EQ(draining, stats.draining_refused);
  // Everything sent after RequestDrain was refused as draining.
  EXPECT_GE(draining, static_cast<std::size_t>(kLate));
  // The final flush checkpointed the trained tenant.
  EXPECT_EQ(flush.checkpoints_saved, 1u);
  EXPECT_TRUE(
      util::io::FileExists(runtime::Fleet::TenantCheckpointPath(dir, 0)));
}

// The drain pin with the cross-tenant aggregation funnel in the serving
// path: suggestion traffic under overload + drain, every accepted request
// answered exactly once with the bit-exact action, and the aggregator's
// conservation law closing after the pool idles (DESIGN.md §16).
TEST_F(ServerTest, DrainUnderLoadWithAggregationAnswersExactlyOnce) {
  // A local fleet: attaching a funnel to the shared fixture would change
  // the route for every other test in the suite.
  runtime::Fleet fleet(*home_, TinyFleetConfig());
  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = 1;
  workload.benign_anomaly_samples = 100;
  fleet.Run(runtime::SimulatedWorkloadFactory(*home_, workload));

  sim::ResidentSimulator resident(*home_, sim::ThermalConfig{}, 2026);
  const fsm::StateVector overnight = resident.OvernightState();
  // Expected actions from the direct route, BEFORE the funnel attaches.
  std::vector<int> minutes;
  for (int minute = 0; minute < util::kMinutesPerDay; minute += 60) {
    minutes.push_back(minute);
  }
  const std::vector<fsm::ActionVector> expected =
      fleet.SuggestMinutes(0, overnight, minutes);

  runtime::AggregationConfig agg;
  agg.max_batch = 8;
  agg.deadline_us = 500;
  fleet.EnableAggregation(agg);

  DispatcherOptions options;
  options.allow_stall = true;
  options.default_state = overnight;
  Dispatcher dispatcher(fleet, options, nullptr);
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 4;
  Server server(dispatcher, config, nullptr);

  LoopbackPair pair = MakeLoopbackPair();
  ConnectionStats stats;
  std::thread serving([&] { stats = server.Serve(*pair.server); });

  // One stalled worker + a suggestion burst past workers + queue, then a
  // drain racing in-flight funnel queries, then late traffic.
  pair.client->WritePayload(R"({"id": 0, "type": "stall"})");
  while (dispatcher.stalled_now() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    pair.client->WritePayload(
        R"({"id": )" + std::to_string(1 + i) +
        R"(, "type": "suggest_action", "tenant": 0, "minute": )" +
        std::to_string(minutes[i]) + "}");
  }
  server.RequestDrain();
  const int kLate = 6;
  for (int i = 0; i < kLate; ++i) {
    pair.client->WritePayload(PingRequest(1000 + i));
  }
  pair.client->CloseWrite();
  dispatcher.ReleaseStalls();
  serving.join();
  server.Drain();
  pair.server->CloseWrite();
  const auto responses = ReadAll(*pair.client);

  // Every request answered exactly once; every accepted suggestion carries
  // the bit-exact direct-route action for its minute.
  const std::size_t total = 1 + minutes.size() + kLate;
  ASSERT_EQ(responses.size(), total);
  std::map<std::int64_t, std::string> outcome;
  std::size_t ok = 0, refused = 0;
  for (const auto& response : responses) {
    const std::int64_t id = ResponseId(response);
    if (ResponseOk(response)) {
      ++ok;
      outcome[id] = "ok";
      if (id >= 1 && id < static_cast<std::int64_t>(1 + minutes.size())) {
        const std::size_t i = static_cast<std::size_t>(id - 1);
        const util::JsonArray& action = response.At("action").AsArray();
        ASSERT_EQ(action.size(), expected[i].size()) << "minute "
                                                     << minutes[i];
        for (std::size_t d = 0; d < action.size(); ++d) {
          EXPECT_EQ(action[d].AsInt(), expected[i][d])
              << "minute " << minutes[i] << " device " << d;
        }
      }
    } else {
      ++refused;
      outcome[id] = response.At("error").AsString();
    }
  }
  EXPECT_EQ(outcome.size(), total) << "every id answered exactly once";
  EXPECT_EQ(ok, stats.accepted);
  EXPECT_EQ(ok + refused, total);

  // The pool is idle, so the funnel's conservation law must close.
  const runtime::AggregationStats agg_stats = fleet.aggregator()->stats();
  EXPECT_EQ(agg_stats.submitted_queries,
            agg_stats.answered_queries + agg_stats.rejected_queries);
}

}  // namespace
}  // namespace jarvis::serve
