#include <gtest/gtest.h>

#include "events/bus.h"
#include "events/event.h"
#include "events/handler.h"
#include "events/logger_app.h"
#include "events/parser.h"
#include "fsm/device_library.h"
#include "sim/resident.h"
#include "sim/scenario.h"

namespace jarvis::events {
namespace {

Event MakeEvent(const std::string& device, const std::string& capability,
                int minute = 0) {
  Event event;
  event.date = util::SimTime(minute);
  event.device_label = device;
  event.capability = capability;
  event.attribute = "state";
  event.attribute_value = "on";
  event.data = "state-change";
  return event;
}

TEST(Event, JsonRoundTripPreservesAllElevenFields) {
  Event event;
  event.date = util::SimTime::FromHms(2, 13, 5);
  event.data = "state-change";
  event.user_info = "user0";
  event.app_info = "lights-on-arrival";
  event.group_info = "main";
  event.location_info = "home";
  event.device_label = "light";
  event.capability = "lighting";
  event.attribute = "state";
  event.attribute_value = "on";
  event.command = "power_on";
  EXPECT_EQ(Event::FromLogLine(event.ToLogLine()), event);
}

TEST(Event, TimestampFieldRendered) {
  const Event event = MakeEvent("light", "lighting", 61);
  const auto doc = util::JsonValue::Parse(event.ToLogLine());
  EXPECT_EQ(doc.At("event_minute").AsInt(), 61);
  EXPECT_FALSE(doc.At("event_date").AsString().empty());
}

TEST(EventBus, WildcardSubscriptionSeesEverything) {
  EventBus bus;
  int count = 0;
  bus.Subscribe("", "", [&](const Event&) { ++count; });
  bus.Publish(MakeEvent("light", "lighting"));
  bus.Publish(MakeEvent("lock", "security"));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventBus, FiltersByDeviceAndCapability) {
  EventBus bus;
  int light_events = 0, security_events = 0;
  bus.Subscribe("light", "", [&](const Event&) { ++light_events; });
  bus.Subscribe("", "security", [&](const Event&) { ++security_events; });
  bus.Publish(MakeEvent("light", "lighting"));
  bus.Publish(MakeEvent("lock", "security"));
  bus.Publish(MakeEvent("light", "lighting"));
  EXPECT_EQ(light_events, 2);
  EXPECT_EQ(security_events, 1);
}

TEST(EventBus, DeliveryInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.Subscribe("", "", [&](const Event&) { order.push_back(1); });
  bus.Subscribe("", "", [&](const Event&) { order.push_back(2); });
  bus.Publish(MakeEvent("x", "y"));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  EventBus bus;
  int count = 0;
  const auto id = bus.Subscribe("", "", [&](const Event&) { ++count; });
  bus.Publish(MakeEvent("a", "b"));
  bus.Unsubscribe(id);
  bus.Publish(MakeEvent("a", "b"));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscription_count(), 0u);
}

TEST(EventBus, CallbackGrowingSubscriptionsDuringPublishIsSafe) {
  // Regression: Publish used to hold a reference into the subscription
  // vector across the callback, dangling when a callback's Subscribe
  // reallocated it (visible under ASan).
  EventBus bus;
  int delivered = 0;
  bus.Subscribe("", "", [&](const Event&) {
    // Enough new subscriptions to force at least one reallocation.
    for (int i = 0; i < 100; ++i) {
      bus.Subscribe("none", "none", [](const Event&) {});
    }
    ++delivered;
  });
  bus.Subscribe("", "", [&](const Event&) { ++delivered; });
  bus.Publish(MakeEvent("a", "b"));
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(bus.subscription_count(), 102u);
}

TEST(EventBus, SubscribingDuringPublishDoesNotSeeCurrentEvent) {
  EventBus bus;
  int late_count = 0;
  bus.Subscribe("", "", [&](const Event&) {
    bus.Subscribe("", "", [&](const Event&) { ++late_count; });
  });
  bus.Publish(MakeEvent("a", "b"));
  EXPECT_EQ(late_count, 0);
  bus.Publish(MakeEvent("a", "b"));
  EXPECT_GT(late_count, 0);
}

TEST(DeviceHandler, NormalizesIdentityAndSynonyms) {
  const auto devices = fsm::ExampleHomeDevices();
  auto handlers = MakeStandardHandlers(devices);
  auto& light = handlers.at("light");
  EXPECT_EQ(light.NormalizeValue("on"), devices[2].FindState("on"));
  EXPECT_EQ(light.NormalizeValue("ON"), devices[2].FindState("on"));
  EXPECT_EQ(light.NormalizeValue("pwr:1"), devices[2].FindState("on"));
  EXPECT_EQ(light.NormalizeValue(" pwr:0 "), devices[2].FindState("off"));
  EXPECT_EQ(light.NormalizeCommand("turnOn"), devices[2].FindAction("power_on"));
  EXPECT_FALSE(light.NormalizeValue("garbage").has_value());
  EXPECT_FALSE(light.NormalizeCommand("garbage").has_value());
}

TEST(DeviceHandler, SynonymForUnknownTargetThrows) {
  const auto devices = fsm::ExampleHomeDevices();
  DeviceHandler handler(devices[2]);
  EXPECT_THROW(handler.AddValueSynonym("X", "no-such-state"),
               std::invalid_argument);
  EXPECT_THROW(handler.AddCommandSynonym("X", "no-such-action"),
               std::invalid_argument);
}

TEST(DeviceHandler, NormalizeFullMessage) {
  const auto devices = fsm::ExampleHomeDevices();
  auto handlers = MakeStandardHandlers(devices);
  RawDeviceMessage message;
  message.time = util::SimTime(100);
  message.device_label = "light";
  message.raw_attribute = "switch";
  message.raw_value = "ON";
  message.raw_command = "turnOn";
  const auto event = handlers.at("light").Normalize(message, "user0", "app",
                                                    "home", "main");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->attribute_value, "on");
  EXPECT_EQ(event->command, "power_on");
  EXPECT_EQ(event->device_label, "light");

  message.raw_value = "UNPARSEABLE";
  EXPECT_FALSE(handlers.at("light")
                   .Normalize(message, "u", "a", "l", "g")
                   .has_value());
}

TEST(LoggerApp, CapturesAllPublications) {
  EventBus bus;
  LoggerApp logger(bus);
  bus.Publish(MakeEvent("light", "lighting", 5));
  bus.Publish(MakeEvent("lock", "security", 6));
  EXPECT_EQ(logger.size(), 2u);
  const std::string dump = logger.DumpLog();
  std::size_t dropped = 99;
  const auto parsed = LoggerApp::ParseLog(dump, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], logger.events()[0]);
}

TEST(LoggerApp, MalformedLinesDroppedAndCounted) {
  const std::string log =
      MakeEvent("a", "b").ToLogLine() + "\nnot json at all\n\n" +
      MakeEvent("c", "d").ToLogLine() + "\n";
  std::size_t dropped = 0;
  const auto events = LoggerApp::ParseLog(log, &dropped);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(dropped, 1u);
}

class ParserFixture : public ::testing::Test {
 protected:
  ParserFixture() : fsm_(fsm::BuildExampleHome()) {}

  Event CommandEvent(int minute, const std::string& device,
                     const std::string& new_state,
                     const std::string& command) {
    Event event = MakeEvent(device, "x", minute);
    event.attribute_value = new_state;
    event.command = command;
    return event;
  }

  Event SensorEvent(int minute, const std::string& device,
                    const std::string& new_state) {
    Event event = MakeEvent(device, "x", minute);
    event.attribute_value = new_state;
    event.command = "";
    return event;
  }

  fsm::EnvironmentFsm fsm_;
  fsm::StateVector initial_ = {0, 0, 0, 2, 2};
};

TEST_F(ParserFixture, CommandsBecomeActions) {
  LogParser parser(fsm_, {10, 1});
  const std::vector<Event> events = {
      CommandEvent(3, "light", "on", "power_on"),
  };
  const auto episodes =
      parser.Parse(events, initial_, util::SimTime(0), /*keep_partial=*/false);
  ASSERT_EQ(episodes.size(), 1u);
  const auto& steps = episodes[0].steps();
  ASSERT_EQ(steps.size(), 10u);
  EXPECT_EQ(steps[3].action[2], *fsm_.device(2).FindAction("power_on"));
  // State reflects the change from minute 4 onward.
  EXPECT_EQ(steps[4].state[2], *fsm_.device(2).FindState("on"));
  EXPECT_EQ(parser.stats().events_consumed, 1u);
}

TEST_F(ParserFixture, SensorEventsOverrideStateWithoutActions) {
  LogParser parser(fsm_, {10, 1});
  const std::vector<Event> events = {
      SensorEvent(2, "temp_sensor", "below_optimal"),
  };
  const auto episodes =
      parser.Parse(events, initial_, util::SimTime(0), false);
  ASSERT_EQ(episodes.size(), 1u);
  const auto& steps = episodes[0].steps();
  EXPECT_EQ(steps[2].action[4], fsm::kNoAction);
  // A command-less event describes the state at its own timestamp.
  EXPECT_EQ(steps[1].state[4], *fsm_.device(4).FindState("optimal"));
  EXPECT_EQ(steps[2].state[4],
            *fsm_.device(4).FindState("below_optimal"));
  EXPECT_EQ(steps[3].state[4],
            *fsm_.device(4).FindState("below_optimal"));
}

TEST_F(ParserFixture, FirstCommandPerDevicePerIntervalWins) {
  LogParser parser(fsm_, {10, 5});  // 5-minute intervals
  const std::vector<Event> events = {
      CommandEvent(1, "light", "on", "power_on"),
      CommandEvent(2, "light", "off", "power_off"),  // same interval: dropped
  };
  const auto episodes = parser.Parse(events, initial_, util::SimTime(0), false);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].steps()[0].action[2],
            *fsm_.device(2).FindAction("power_on"));
  EXPECT_EQ(parser.stats().conflicting_commands, 1u);
}

TEST_F(ParserFixture, UnknownVocabularyCounted) {
  LogParser parser(fsm_, {5, 1});
  const std::vector<Event> events = {
      CommandEvent(0, "toaster", "on", "power_on"),   // unknown device
      CommandEvent(1, "light", "on", "explode"),      // unknown command
      SensorEvent(2, "temp_sensor", "plasma"),        // unknown state
  };
  parser.Parse(events, initial_, util::SimTime(0), false);
  EXPECT_EQ(parser.stats().unknown_device, 1u);
  EXPECT_EQ(parser.stats().unknown_command, 1u);
  EXPECT_EQ(parser.stats().unknown_state, 1u);
}

TEST_F(ParserFixture, MultipleEpisodesCutAtPeriodBoundaries) {
  LogParser parser(fsm_, {10, 1});
  const std::vector<Event> events = {
      CommandEvent(3, "light", "on", "power_on"),
      CommandEvent(15, "light", "off", "power_off"),
  };
  const auto episodes = parser.Parse(events, initial_, util::SimTime(0), false);
  ASSERT_EQ(episodes.size(), 2u);
  // The light state carries over the episode boundary.
  EXPECT_EQ(episodes[1].initial_state()[2], *fsm_.device(2).FindState("on"));
  EXPECT_EQ(episodes[1].steps()[5].action[2],
            *fsm_.device(2).FindAction("power_off"));
}

TEST_F(ParserFixture, StragglersSkippedAndCounted) {
  LogParser parser(fsm_, {10, 1});
  const std::vector<Event> events = {
      CommandEvent(5, "light", "on", "power_on"),
      SensorEvent(2, "temp_sensor", "below_optimal"),  // late arrival
  };
  const auto episodes = parser.Parse(events, initial_, util::SimTime(0), false);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(parser.stats().stragglers_skipped, 1u);
  EXPECT_EQ(parser.stats().out_of_order, 1u);
  EXPECT_EQ(parser.stats().events_consumed, 1u);
  // The straggler's stale reading never overrode the tracked state.
  EXPECT_EQ(episodes[0].steps()[3].state[4],
            *fsm_.device(4).FindState("optimal"));
  EXPECT_EQ(parser.report().events_dropped(), 1u);
  EXPECT_DOUBLE_EQ(parser.report().DropFraction(), 0.5);
}

TEST_F(ParserFixture, DropBudgetFlagsDegradedStream) {
  const std::vector<Event> events = {
      CommandEvent(1, "light", "on", "power_on"),
      CommandEvent(2, "toaster", "on", "power_on"),  // unknown device
  };
  LogParser strict(fsm_, {10, 1}, /*drop_budget=*/0.25);
  strict.Parse(events, initial_, util::SimTime(0), false);
  EXPECT_FALSE(strict.report().WithinBudget());

  LogParser lax(fsm_, {10, 1}, /*drop_budget=*/0.5);
  lax.Parse(events, initial_, util::SimTime(0), false);
  EXPECT_TRUE(lax.report().WithinBudget());
}

TEST_F(ParserFixture, EmptyLogYieldsNothing) {
  LogParser parser(fsm_, {10, 1});
  EXPECT_TRUE(parser.Parse({}, initial_, util::SimTime(0), false).empty());
}

TEST_F(ParserFixture, RoundTripWithResidentSimulatorEvents) {
  // Full-pipeline property: parsing the resident simulator's event stream
  // reproduces the same trigger-action behavior as its recorded episode.
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 9,
                                  sim::BehaviorConfig{0.0, 1});
  sim::ScenarioGenerator generator({}, {}, {}, 12);
  const auto trace = resident.SimulateDay(generator.Generate(1),
                                          resident.OvernightState(), 21.0);

  LogParser parser(home, {util::kMinutesPerDay, 1});
  const auto episodes = parser.Parse(trace.events,
                                     trace.episode.initial_state(),
                                     util::SimTime::FromDayAndMinute(1, 0),
                                     /*keep_partial=*/true);
  ASSERT_GE(episodes.size(), 1u);
  const auto original = fsm::ExtractTriggerActions({trace.episode});
  const auto parsed = fsm::ExtractTriggerActions(episodes);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].action, original[i].action) << "index " << i;
    EXPECT_EQ(parsed[i].minute_of_day, original[i].minute_of_day);
  }
  EXPECT_EQ(parser.stats().unknown_device, 0u);
  EXPECT_EQ(parser.stats().unknown_command, 0u);
}

}  // namespace
}  // namespace jarvis::events
