#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"

namespace jarvis::obs {
namespace {

TEST(Tracer, RecordsNestedSpansWithDepth) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      {
        ScopedSpan leaf(&tracer, "leaf");
      }
    }
    ScopedSpan sibling(&tracer, "sibling");
  }
  const std::vector<SpanRecord> spans = tracer.Flush();
  ASSERT_EQ(spans.size(), 4u);
  // Sorted by start time: outer opened first, then inner, leaf, sibling.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].depth, 1u);
  // A child starts no earlier than its parent and fits inside it.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
}

TEST(Tracer, FlushDrainsBuffer) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "once");
  }
  EXPECT_EQ(tracer.Flush().size(), 1u);
  EXPECT_TRUE(tracer.Flush().empty());
  {
    ScopedSpan span(&tracer, "again");
  }
  // Depth restarts at the root after a balanced scope, flush or not.
  const std::vector<SpanRecord> spans = tracer.Flush();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "again");
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(Tracer, NullTracerIsInert) {
  ScopedSpan span(nullptr, "ignored");
  ScopedSpan nested(nullptr, "also ignored");
  // Nothing to assert beyond "does not crash"; the spans record nowhere.
}

TEST(Tracer, OnlyCompletedSpansFlush) {
  Tracer tracer;
  ScopedSpan open(&tracer, "still-open");
  {
    ScopedSpan done(&tracer, "done");
  }
  const std::vector<SpanRecord> spans = tracer.Flush();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "done");
  EXPECT_EQ(spans[0].depth, 1u);  // opened under "still-open"
}

// Label `runtime`: recorded under TSan in CI. Spans from concurrent pool
// workers land in per-thread buffers and merge at flush.
TEST(Tracer, ConcurrentSpansFromThreadPool) {
  Tracer tracer;
  constexpr std::size_t kTasks = 32;
  {
    runtime::ThreadPool pool(4);
    for (std::size_t t = 0; t < kTasks; ++t) {
      pool.Submit([&tracer, t] {
        ScopedSpan outer(&tracer, "task." + std::to_string(t));
        ScopedSpan inner(&tracer, "work");
      });
    }
    pool.Shutdown();
  }
  const std::vector<SpanRecord> spans = tracer.Flush();
  ASSERT_EQ(spans.size(), 2 * kTasks);

  std::size_t roots = 0;
  std::size_t children = 0;
  std::set<std::string> root_names;
  std::set<std::size_t> threads;
  for (const SpanRecord& span : spans) {
    threads.insert(span.thread_index);
    if (span.depth == 0) {
      ++roots;
      root_names.insert(span.name);
    } else {
      EXPECT_EQ(span.name, "work");
      EXPECT_EQ(span.depth, 1u);
      ++children;
    }
  }
  EXPECT_EQ(roots, kTasks);
  EXPECT_EQ(children, kTasks);
  EXPECT_EQ(root_names.size(), kTasks);  // every task span distinct
  EXPECT_LE(threads.size(), 4u);         // dense thread indices, one per worker
  // Sorted by start time.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST(Tracer, SpansToJsonShape) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "root");
    ScopedSpan inner(&tracer, "child");
  }
  const util::JsonValue json = SpansToJson(tracer.Flush());
  const std::string dump = json.Dump();
  EXPECT_NE(dump.find("\"root\""), std::string::npos);
  EXPECT_NE(dump.find("\"child\""), std::string::npos);
  EXPECT_NE(dump.find("\"depth\""), std::string::npos);
  EXPECT_NE(dump.find("\"duration_ns\""), std::string::npos);
  EXPECT_NO_THROW(util::JsonValue::Parse(dump));
}

}  // namespace
}  // namespace jarvis::obs
