// Fleet determinism and containment contracts (DESIGN.md §10):
//   * per-tenant results are identical for any worker count — jobs=1 is
//     the sequential oracle the parallel schedule must reproduce;
//   * a throwing tenant is quarantined and counted, never fatal;
//   * the batched SuggestMinutes path equals per-minute SuggestAction.
#include "runtime/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fsm/device_library.h"
#include "sim/resident.h"
#include "util/rng.h"

namespace jarvis::runtime {
namespace {

// Deliberately tiny tenant pipelines: the contracts under test are about
// scheduling and determinism, not policy quality.
FleetConfig CheapConfig(std::size_t tenants, std::size_t jobs) {
  FleetConfig config;
  config.tenants = tenants;
  config.jobs = jobs;
  config.fleet_seed = 2024;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = 2;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 3;
  return config;
}

SimulatedWorkloadOptions CheapWorkload() {
  SimulatedWorkloadOptions options;
  options.learning_days = 2;
  options.benign_anomaly_samples = 200;
  return options;
}

class FleetFixture : public ::testing::Test {
 protected:
  static const fsm::EnvironmentFsm& Home() {
    static const fsm::EnvironmentFsm home = fsm::BuildFullHome();
    return home;
  }
};

void ExpectTenantResultsIdentical(const FleetReport& oracle,
                                  const FleetReport& parallel) {
  ASSERT_EQ(oracle.tenants.size(), parallel.tenants.size());
  for (std::size_t i = 0; i < oracle.tenants.size(); ++i) {
    const TenantResult& a = oracle.tenants[i];
    const TenantResult& b = parallel.tenants[i];
    SCOPED_TRACE(::testing::Message() << "tenant " << i);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.learning_episodes, b.learning_episodes);
    // DayPlan metrics: exact FP equality, not tolerances — the worker
    // count must not perturb a single operation in any tenant pipeline.
    EXPECT_EQ(a.plan.optimized_metrics.energy_kwh,
              b.plan.optimized_metrics.energy_kwh);
    EXPECT_EQ(a.plan.optimized_metrics.cost_usd,
              b.plan.optimized_metrics.cost_usd);
    EXPECT_EQ(a.plan.optimized_metrics.comfort_error_c_min,
              b.plan.optimized_metrics.comfort_error_c_min);
    EXPECT_EQ(a.plan.normal_metrics.energy_kwh,
              b.plan.normal_metrics.energy_kwh);
    EXPECT_EQ(a.plan.violations, b.plan.violations);
    EXPECT_EQ(a.plan.train.greedy_reward, b.plan.train.greedy_reward);
    EXPECT_EQ(a.plan.train.episode_rewards, b.plan.train.episode_rewards);
    EXPECT_EQ(a.health.parse.events_dropped(), b.health.parse.events_dropped());
    EXPECT_EQ(a.health.learn.episodes_used, b.health.learn.episodes_used);
  }
  EXPECT_EQ(oracle.completed, parallel.completed);
  EXPECT_EQ(oracle.quarantined, parallel.quarantined);
  EXPECT_EQ(oracle.total_energy_kwh, parallel.total_energy_kwh);
  EXPECT_EQ(oracle.total_cost_usd, parallel.total_cost_usd);
  EXPECT_EQ(oracle.total_violations, parallel.total_violations);
}

TEST_F(FleetFixture, SixteenTenantParallelRunMatchesSequentialOracle) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());

  Fleet oracle(Home(), CheapConfig(16, 1));
  const FleetReport sequential = oracle.Run(factory);
  ASSERT_EQ(sequential.completed, 16u);
  ASSERT_EQ(sequential.quarantined, 0u);

  Fleet parallel(Home(), CheapConfig(16, 8));
  const FleetReport threaded = parallel.Run(factory);

  ExpectTenantResultsIdentical(sequential, threaded);
}

TEST_F(FleetFixture, TenantSeedsDeriveFromFleetSeed) {
  Fleet fleet(Home(), CheapConfig(4, 1));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.tenant_seed(i),
              util::DeriveSeed(2024, static_cast<std::uint64_t>(i)));
  }
  EXPECT_NE(fleet.tenant_seed(0), fleet.tenant_seed(1));
  EXPECT_THROW(fleet.tenant_seed(99), std::out_of_range);
}

TEST_F(FleetFixture, ThrowingTenantIsQuarantinedNotFatal) {
  const auto good = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const WorkloadFactory factory = [&good](std::size_t tenant,
                                          std::uint64_t seed) {
    if (tenant == 2) {
      throw std::runtime_error("tenant 2 has a corrupt event log");
    }
    return good(tenant, seed);
  };

  Fleet fleet(Home(), CheapConfig(4, 2));
  const FleetReport report = fleet.Run(factory);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_TRUE(report.tenants[2].quarantined);
  EXPECT_EQ(report.tenants[2].error, "tenant 2 has a corrupt event log");
  EXPECT_FALSE(report.tenants[2].completed);
  EXPECT_EQ(fleet.tenant(2), nullptr);
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_TRUE(report.tenants[i].completed);
    EXPECT_NE(fleet.tenant(i), nullptr);
  }

  // A re-run skips the quarantined shard instead of retrying it.
  const FleetReport rerun = fleet.Run(good);
  EXPECT_EQ(rerun.completed, 3u);
  EXPECT_EQ(rerun.quarantined, 1u);
  EXPECT_EQ(rerun.tenants[2].error, "quarantined by a previous run");
}

TEST_F(FleetFixture, SuggestMinutesMatchesPerMinuteSuggestAction) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  Fleet fleet(Home(), CheapConfig(2, 2));
  ASSERT_EQ(fleet.Run(factory).completed, 2u);

  sim::ResidentSimulator resident(Home(), sim::ThermalConfig{}, 1);
  const fsm::StateVector state = resident.OvernightState();
  const std::vector<int> minutes = {0, 60, 6 * 60, 12 * 60, 23 * 60};
  for (std::size_t tenant = 0; tenant < 2; ++tenant) {
    const auto batched = fleet.SuggestMinutes(tenant, state, minutes);
    ASSERT_EQ(batched.size(), minutes.size());
    for (std::size_t i = 0; i < minutes.size(); ++i) {
      EXPECT_EQ(batched[i],
                fleet.tenant(tenant)->SuggestAction(state, minutes[i]))
          << "tenant " << tenant << " minute " << minutes[i];
    }
  }
  EXPECT_THROW(fleet.SuggestMinutes(99, state, minutes), std::out_of_range);
}

TEST_F(FleetFixture, TenantMetricsIdenticalAcrossWorkerCounts) {
  // Tenant-level metrics are observational AND deterministic: each tenant
  // Jarvis owns its registry, so its deterministic snapshot is a pure
  // function of the tenant seed — bit-identical whether the fleet ran
  // sequentially or across 4 workers.
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  Fleet oracle(Home(), CheapConfig(4, 1));
  Fleet parallel(Home(), CheapConfig(4, 4));
  ASSERT_EQ(oracle.Run(factory).completed, 4u);
  ASSERT_EQ(parallel.Run(factory).completed, 4u);

  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(::testing::Message() << "tenant " << i);
    const obs::MetricsSnapshot a = oracle.TenantMetrics(i).DeterministicOnly();
    const obs::MetricsSnapshot b =
        parallel.TenantMetrics(i).DeterministicOnly();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(oracle.AggregateTenantMetrics().DeterministicOnly(),
            parallel.AggregateTenantMetrics().DeterministicOnly());
}

TEST_F(FleetFixture, InstrumentationDoesNotPerturbResults) {
  // The determinism contract extends to instrumentation itself: disabling
  // tenant metrics must not change a single FP operation in any pipeline.
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  Fleet instrumented(Home(), CheapConfig(2, 1));
  FleetConfig bare_config = CheapConfig(2, 1);
  bare_config.tenant_config.metrics_enabled = false;
  Fleet bare(Home(), bare_config);

  const FleetReport with_metrics = instrumented.Run(factory);
  const FleetReport without = bare.Run(factory);
  ExpectTenantResultsIdentical(without, with_metrics);

  EXPECT_FALSE(instrumented.TenantMetrics(0).empty());
  EXPECT_TRUE(bare.TenantMetrics(0).empty());
}

TEST_F(FleetFixture, FleetLevelMetricsAndSpans) {
  const auto good = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const WorkloadFactory factory = [&good](std::size_t tenant,
                                          std::uint64_t seed) {
    if (tenant == 1) throw std::runtime_error("boom");
    return good(tenant, seed);
  };
  Fleet fleet(Home(), CheapConfig(3, 2));
  fleet.Run(factory);

  const obs::MetricsSnapshot fleet_metrics = fleet.TakeMetricsSnapshot();
  EXPECT_EQ(fleet_metrics.CounterValue("runtime.fleet.runs"), 1u);
  EXPECT_EQ(fleet_metrics.CounterValue("runtime.fleet.tenants_run"), 3u);
  EXPECT_EQ(fleet_metrics.CounterValue("runtime.fleet.tenants_completed"),
            2u);
  EXPECT_EQ(fleet_metrics.CounterValue("runtime.fleet.tenants_quarantined"),
            1u);
  // The scheduling pool reported through the fleet registry.
  EXPECT_EQ(fleet_metrics.CounterValue("runtime.pool.tasks_executed"), 3u);

  // Per-tenant span trees: one "tenant.N" root per attempted tenant, with
  // the pipeline children underneath for the ones that ran.
  std::size_t roots = 0;
  std::size_t children = 0;
  for (const obs::SpanRecord& span : fleet.FlushSpans()) {
    if (span.depth == 0) {
      EXPECT_EQ(span.name.rfind("tenant.", 0), 0u);
      ++roots;
    } else {
      ++children;
    }
  }
  EXPECT_EQ(roots, 3u);
  EXPECT_GE(children, 2u * 3u);  // workload/learn/optimize for 2 tenants

  // TenantMetrics guards: quarantined tenant never built a pipeline.
  EXPECT_THROW(fleet.TenantMetrics(1), std::logic_error);
  EXPECT_THROW(fleet.TenantMetrics(99), std::out_of_range);
}

TEST_F(FleetFixture, ReportSnapshotIsSafeWhileRunIsInFlight) {
  // Regression: report() used to hand back a const reference into state the
  // running fleet mutates — a racing reader saw a vector being resized
  // under it. It now returns a by-value snapshot taken under the fleet
  // lock, so polling mid-Run is safe (the snapshot is simply the previous
  // Run's report until the new one lands).
  Fleet fleet(Home(), CheapConfig(3, 2));
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  std::atomic<bool> done{false};
  std::thread poller([&fleet, &done] {
    while (!done.load()) {
      const FleetReport snapshot = fleet.report();
      EXPECT_TRUE(snapshot.tenants.empty() || snapshot.tenants.size() == 3u);
      const std::size_t tenants = fleet.tenant_count();
      EXPECT_EQ(tenants, 3u);
    }
  });
  const FleetReport report = fleet.Run(factory);
  done.store(true);
  poller.join();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(fleet.report().tenants.size(), 3u);
}

// Regression (dangling `stored` fix): the end-of-run publish used to read
// a raw pointer into the shard slot after dropping the fleet lock, so a
// concurrent RemoveTenant — which resets the slot — left the publish
// cloning a destroyed network. The job now keeps its own shared_ptr
// ownership token across the publish. Run under TSan/ASan (label
// `runtime`), where the old bug is a hard failure.
TEST_F(FleetFixture, RemoveTenantWhilePublishInFlightIsSafe) {
  FleetConfig config = CheapConfig(6, 3);
  // Stream every episode: maximizes publish traffic racing the removals.
  config.tenant_config.trainer.republish.every_episodes = 1;
  Fleet fleet(Home(), config);
  fleet.EnableAggregation(AggregationConfig{});
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());

  std::atomic<bool> done{false};
  std::thread remover([&fleet, &done] {
    // Hammer removals of the first three tenants (idempotent) until the
    // run finishes, so some land mid-training, some mid-publish.
    while (!done.load()) {
      for (std::size_t index = 0; index < 3; ++index) {
        fleet.RemoveTenant(index);
      }
    }
  });
  const FleetReport report = fleet.Run(factory);
  done.store(true);
  remover.join();

  EXPECT_EQ(report.tenants.size(), 6u);
  // The untouched half of the fleet trained and serves normally.
  sim::ResidentSimulator resident(Home(), sim::ThermalConfig{}, 1);
  const fsm::StateVector state = resident.OvernightState();
  for (std::size_t index = 3; index < 6; ++index) {
    const auto actions = fleet.SuggestMinutes(index, state, {480, 720});
    EXPECT_EQ(actions.size(), 2u);
  }
  // The funnel survived the racing publishes with its conservation law
  // intact.
  const auto aggregator = fleet.aggregator();
  ASSERT_NE(aggregator, nullptr);
  const AggregationStats stats = aggregator->stats();
  EXPECT_EQ(stats.submitted_queries,
            stats.answered_queries + stats.rejected_queries);
}

// Regression (aggregator() use-after-free fix): aggregator() used to
// return a raw pointer that a second EnableAggregation invalidated. It now
// returns shared ownership, so a cached handle — and in-flight
// SuggestMinutes traffic — survives any number of re-enables, and serving
// answers stay bit-identical to the direct route throughout.
TEST_F(FleetFixture, ReEnableAggregationWhileServingKeepsOldHandleValid) {
  Fleet fleet(Home(), CheapConfig(2, 1));
  fleet.Run(SimulatedWorkloadFactory(Home(), CheapWorkload()));

  sim::ResidentSimulator resident(Home(), sim::ThermalConfig{}, 1);
  const fsm::StateVector state = resident.OvernightState();
  const std::vector<int> minutes = {0, 240, 480, 720, 960, 1200};
  // Direct-route oracle, computed before any aggregation exists.
  const auto expected_t0 = fleet.SuggestMinutes(0, state, minutes);
  const auto expected_t1 = fleet.SuggestMinutes(1, state, minutes);

  fleet.EnableAggregation(AggregationConfig{});
  const std::shared_ptr<AggregationService> first = fleet.aggregator();
  ASSERT_NE(first, nullptr);

  std::atomic<bool> done{false};
  std::thread suggester([&] {
    while (!done.load()) {
      EXPECT_EQ(fleet.SuggestMinutes(0, state, minutes), expected_t0);
      EXPECT_EQ(fleet.SuggestMinutes(1, state, minutes), expected_t1);
    }
  });
  for (int cycle = 0; cycle < 5; ++cycle) {
    fleet.EnableAggregation(AggregationConfig{});
  }
  done.store(true);
  suggester.join();

  // The pre-replace handle still answers stats queries — with the raw
  // pointer this dereference was the use-after-free.
  const AggregationStats old_stats = first->stats();
  EXPECT_EQ(old_stats.submitted_queries,
            old_stats.answered_queries + old_stats.rejected_queries);
  const std::shared_ptr<AggregationService> current = fleet.aggregator();
  ASSERT_NE(current, nullptr);
  EXPECT_NE(current.get(), first.get());
  EXPECT_GE(current->stats().weights_published, 2u);
}

// Regression (EnableAggregation quiescence fix): attaching the funnel
// while Run is in flight must leave no tenant behind — the swap and the
// publish set are decided in one critical section, so every tenant that
// completes either publishes at its own job end (it saw the new service)
// or was published by EnableAggregation (it had already finished). After
// the run every suggest rides the funnel: zero rejects, zero fallbacks.
TEST_F(FleetFixture, EnableAggregationMidRunCoversEveryCompletedTenant) {
  Fleet fleet(Home(), CheapConfig(4, 2));
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());

  FleetReport report;
  std::thread runner([&] { report = fleet.Run(factory); });
  fleet.EnableAggregation(AggregationConfig{});
  runner.join();

  ASSERT_EQ(report.completed, 4u);
  const auto aggregator = fleet.aggregator();
  ASSERT_NE(aggregator, nullptr);
  EXPECT_GE(aggregator->stats().weights_published, 4u);

  sim::ResidentSimulator resident(Home(), sim::ThermalConfig{}, 1);
  const fsm::StateVector state = resident.OvernightState();
  const AggregationStats before = aggregator->stats();
  for (std::size_t index = 0; index < 4; ++index) {
    fleet.SuggestMinutes(index, state, {480});
  }
  const AggregationStats after = aggregator->stats();
  // All four went through the funnel (a tenant without a published
  // version would have been rejected into the direct-route fallback).
  EXPECT_EQ(after.answered_queries, before.answered_queries + 4);
  EXPECT_EQ(after.rejected_queries, before.rejected_queries);
}

// The streaming tentpole end to end: with a republish cadence configured
// and the funnel attached BEFORE Run, training tenants stream weight
// versions mid-run (strictly more versions than publish-on-completion
// would produce), and — because the hook draws no RNG — both the tenant
// results and the served suggestions are bit-identical to a fleet that
// never streamed.
TEST_F(FleetFixture, StreamingRepublishAddsVersionsWithoutPerturbingResults) {
  FleetConfig streaming_config = CheapConfig(2, 2);
  streaming_config.tenant_config.trainer.republish.every_episodes = 1;
  Fleet streaming(Home(), streaming_config);
  streaming.EnableAggregation(AggregationConfig{});
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const FleetReport streamed_report = streaming.Run(factory);

  Fleet plain(Home(), CheapConfig(2, 1));  // jobs=1: the sequential oracle
  const FleetReport plain_report = plain.Run(factory);

  ExpectTenantResultsIdentical(plain_report, streamed_report);

  const auto aggregator = streaming.aggregator();
  ASSERT_NE(aggregator, nullptr);
  // Publish-on-completion alone would publish exactly one version per
  // completed tenant; streaming every episode must beat that.
  EXPECT_GT(aggregator->stats().weights_published, streamed_report.completed);

  sim::ResidentSimulator resident(Home(), sim::ThermalConfig{}, 1);
  const fsm::StateVector state = resident.OvernightState();
  const std::vector<int> minutes = {0, 360, 720, 1080};
  for (std::size_t index = 0; index < 2; ++index) {
    EXPECT_EQ(streaming.SuggestMinutes(index, state, minutes),
              plain.SuggestMinutes(index, state, minutes))
        << "tenant " << index;
  }
}

TEST_F(FleetFixture, GuardsBadConfiguration) {
  FleetConfig config = CheapConfig(0, 1);
  EXPECT_THROW(Fleet(Home(), config), std::invalid_argument);
  Fleet fleet(Home(), CheapConfig(1, 1));
  EXPECT_THROW(fleet.Run(WorkloadFactory{}), std::invalid_argument);
  EXPECT_THROW(fleet.SuggestMinutes(0, {}, {}), std::logic_error);
}

}  // namespace
}  // namespace jarvis::runtime
