#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace jarvis::util {
namespace {

TEST(Stats, BasicAggregates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 4.0);
}

TEST(Stats, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(Mean(empty), std::invalid_argument);
  EXPECT_THROW(Variance(empty), std::invalid_argument);
  EXPECT_THROW(Min(empty), std::invalid_argument);
  EXPECT_THROW(Max(empty), std::invalid_argument);
  EXPECT_THROW(Percentile(empty, 50.0), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
  EXPECT_THROW(Percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(Percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, PercentileSingleSample) {
  const std::vector<double> xs = {7.5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 7.5);
}

TEST(Stats, PercentileRejectsNan) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // A NaN p slips past naive `p < 0 || p > 100` checks (every comparison
  // with NaN is false); it must still throw.
  EXPECT_THROW(Percentile(xs, nan), std::invalid_argument);
  EXPECT_THROW(Percentile({1.0, nan, 3.0}, 50.0), std::invalid_argument);
}

TEST(Stats, OnlineVarianceNeverNegative) {
  // Many identical large-magnitude samples drive Welford's m2 to a tiny
  // negative rounding residue; variance/stddev must clamp, not go NaN.
  OnlineStats online;
  for (int i = 0; i < 1000; ++i) online.Add(1.0e8 + 0.1);
  EXPECT_GE(online.variance(), 0.0);
  EXPECT_FALSE(std::isnan(online.stddev()));
}

TEST(Stats, OnlineSingleSample) {
  OnlineStats online;
  online.Add(4.25);
  EXPECT_EQ(online.count(), 1u);
  EXPECT_DOUBLE_EQ(online.mean(), 4.25);
  EXPECT_DOUBLE_EQ(online.variance(), 0.0);
  EXPECT_DOUBLE_EQ(online.min(), 4.25);
  EXPECT_DOUBLE_EQ(online.max(), 4.25);
}

TEST(Stats, OnlineMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextGaussian(3.0, 2.0);
    xs.push_back(x);
    online.Add(x);
  }
  EXPECT_NEAR(online.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(online.variance(), Variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(online.min(), Min(xs));
  EXPECT_DOUBLE_EQ(online.max(), Max(xs));
  EXPECT_EQ(online.count(), xs.size());
}

TEST(Stats, RocPerfectClassifier) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<bool> labels = {true, true, false, false};
  const auto curve = RocCurve(scores, labels);
  EXPECT_NEAR(RocAuc(curve), 1.0, 1e-9);
}

TEST(Stats, RocRandomClassifierNearHalf) {
  Rng rng(6);
  std::vector<double> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.NextBool(0.5));
  }
  EXPECT_NEAR(RocAuc(RocCurve(scores, labels)), 0.5, 0.02);
}

TEST(Stats, RocInvertedClassifierNearZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> labels = {true, true, false, false};
  EXPECT_NEAR(RocAuc(RocCurve(scores, labels)), 0.0, 1e-9);
}

TEST(Stats, RocRequiresBothClasses) {
  EXPECT_THROW(RocCurve({0.5, 0.6}, {true, true}), std::invalid_argument);
  EXPECT_THROW(RocCurve({0.5}, {true, false}), std::invalid_argument);
}

TEST(Stats, RocEndpointsSpanUnitSquare) {
  Rng rng(7);
  std::vector<double> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 500; ++i) {
    const bool positive = rng.NextBool(0.4);
    scores.push_back(positive ? rng.NextGaussian(0.7, 0.2)
                              : rng.NextGaussian(0.3, 0.2));
    labels.push_back(positive);
  }
  const auto curve = RocCurve(scores, labels);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  // Monotone nondecreasing in both axes.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
  const double auc = RocAuc(curve);
  EXPECT_GT(auc, 0.75);
  EXPECT_LE(auc, 1.0);
}

TEST(Stats, HistogramBinsAndClamps) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bin 0
  hist.Add(9.9);   // bin 4
  hist.Add(-3.0);  // clamps to bin 0
  hist.Add(42.0);  // clamps to bin 4
  hist.Add(5.0);   // bin 2
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.counts()[0], 2u);
  EXPECT_EQ(hist.counts()[2], 1u);
  EXPECT_EQ(hist.counts()[4], 2u);
  EXPECT_DOUBLE_EQ(hist.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.BinCenter(4), 9.0);
  EXPECT_FALSE(hist.ToString().empty());
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Stats, HistogramIgnoresNanAndClampsInfinity) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(std::numeric_limits<double>::quiet_NaN());
  hist.Add(std::numeric_limits<double>::infinity());
  hist.Add(-std::numeric_limits<double>::infinity());
  // NaN has no bin: excluded from total(), tallied in nan_ignored().
  EXPECT_EQ(hist.total(), 2u);
  EXPECT_EQ(hist.nan_ignored(), 1u);
  // ±inf clamp into the edge bins like any out-of-range sample.
  EXPECT_EQ(hist.counts()[0], 1u);
  EXPECT_EQ(hist.counts()[4], 1u);
}

}  // namespace
}  // namespace jarvis::util
