// Dispatcher handlers against an in-memory Fleet — no sockets anywhere,
// which is the point of the transport/handler split. Includes the
// end-to-end parity pin: a day of suggest_action requests through the
// dispatcher is bit-identical to calling Fleet::SuggestMinutes directly.
#include "serve/dispatcher.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fsm/device_library.h"
#include "runtime/fleet.h"
#include "serve/protocol.h"
#include "sim/resident.h"
#include "util/io.h"
#include "util/json.h"
#include "util/timeofday.h"

namespace jarvis::serve {
namespace {

runtime::FleetConfig TinyFleetConfig(std::size_t tenants) {
  runtime::FleetConfig config;
  config.tenants = tenants;
  config.jobs = 1;
  config.fleet_seed = 2026;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = 2;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 2;
  return config;
}

runtime::SimulatedWorkloadOptions TinyWorkload() {
  runtime::SimulatedWorkloadOptions options;
  options.learning_days = 1;
  options.benign_anomaly_samples = 100;
  return options;
}

// One trained two-tenant fleet shared by the whole suite: training is the
// expensive part and every test here only reads from it.
class DispatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    home_ = new fsm::EnvironmentFsm(fsm::BuildFullHome());
    fleet_ = new runtime::Fleet(*home_, TinyFleetConfig(2));
    fleet_->Run(runtime::SimulatedWorkloadFactory(*home_, TinyWorkload()));
    sim::ResidentSimulator resident(*home_, sim::ThermalConfig{}, 2026);
    overnight_ = new fsm::StateVector(resident.OvernightState());
  }
  static void TearDownTestSuite() {
    delete overnight_;
    delete fleet_;
    delete home_;
    overnight_ = nullptr;
    fleet_ = nullptr;
    home_ = nullptr;
  }

  static DispatcherOptions DefaultOptions() {
    DispatcherOptions options;
    options.default_state = *overnight_;
    return options;
  }

  static util::JsonValue Call(Dispatcher& dispatcher,
                              const std::string& payload) {
    return util::JsonValue::Parse(dispatcher.HandlePayload(payload));
  }

  static fsm::EnvironmentFsm* home_;
  static runtime::Fleet* fleet_;
  static fsm::StateVector* overnight_;
};

fsm::EnvironmentFsm* DispatcherTest::home_ = nullptr;
runtime::Fleet* DispatcherTest::fleet_ = nullptr;
fsm::StateVector* DispatcherTest::overnight_ = nullptr;

TEST_F(DispatcherTest, PingEchoesIdAndProtocol) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  const auto response =
      Call(dispatcher, R"({"id": 17, "type": "ping"})");
  EXPECT_TRUE(ResponseOk(response));
  EXPECT_EQ(ResponseId(response), 17);
  EXPECT_EQ(response.At("protocol").AsInt(), kProtocolVersion);
}

TEST_F(DispatcherTest, HostilePayloadsAreErrorResponsesNeverThrows) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  const std::vector<std::string> hostile = {
      "",                                       // empty
      "not json at all {{{",                    // garbage
      "[1,2,3]",                                // not an object
      R"({"id": 1})",                           // no type
      R"({"id": 1, "type": "frobnicate"})",     // unknown type
      R"({"id": "x", "type": "ping"})",         // non-numeric id
      R"({"id": 2, "type": 42})",               // non-string type
      std::string(300, '\xff'),                 // binary noise
  };
  for (const std::string& payload : hostile) {
    const auto response = Call(dispatcher, payload);
    EXPECT_FALSE(ResponseOk(response)) << payload;
    EXPECT_EQ(response.At("error").AsString(), kErrBadRequest) << payload;
  }
  // The dispatcher still serves after all of that.
  EXPECT_TRUE(Call(dispatcher, R"({"id": 3, "type": "ping"})").At("ok")
                  .AsBool());
}

TEST_F(DispatcherTest, UnknownTypeStillEchoesItsId) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  const auto response =
      Call(dispatcher, R"({"id": 99, "type": "frobnicate"})");
  EXPECT_EQ(ResponseId(response), 99);
}

TEST_F(DispatcherTest, SuggestValidation) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  // Tenant outside the catalog.
  auto response = Call(
      dispatcher, R"({"id": 1, "type": "suggest_action", "tenant": 7,
                      "minute": 480})");
  EXPECT_EQ(response.At("error").AsString(), kErrUnknownTenant);
  response = Call(
      dispatcher, R"({"id": 2, "type": "suggest_action", "tenant": -1,
                      "minute": 480})");
  EXPECT_EQ(response.At("error").AsString(), kErrUnknownTenant);
  // Missing minute.
  response = Call(dispatcher,
                  R"({"id": 3, "type": "suggest_action", "tenant": 0})");
  EXPECT_EQ(response.At("error").AsString(), kErrBadRequest);
  // Malformed state.
  response = Call(
      dispatcher, R"({"id": 4, "type": "suggest_action", "tenant": 0,
                      "minute": 480, "state": "overnight"})");
  EXPECT_EQ(response.At("error").AsString(), kErrBadRequest);
  // A state of the wrong arity trips the Fleet contract check, which must
  // come back as a bad_request response, not an exception.
  response = Call(
      dispatcher, R"({"id": 5, "type": "suggest_action", "tenant": 0,
                      "minute": 480, "state": [1, 1]})");
  EXPECT_FALSE(ResponseOk(response));
}

TEST_F(DispatcherTest, SuggestActionParityWithDirectFleetCall) {
  // The acceptance pin: a day of per-minute suggest_action requests
  // through the wire handlers must be bit-identical to one direct batched
  // Fleet::SuggestMinutes call.
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  std::vector<int> minutes;
  for (int minute = 0; minute < util::kMinutesPerDay; minute += 1) {
    minutes.push_back(minute);
  }
  const std::vector<fsm::ActionVector> direct =
      fleet_->SuggestMinutes(0, *overnight_, minutes);
  ASSERT_EQ(direct.size(), minutes.size());
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    const auto response = Call(
        dispatcher,
        R"({"id": 1, "type": "suggest_action", "tenant": 0, "minute": )" +
            std::to_string(minutes[i]) + "}");
    ASSERT_TRUE(ResponseOk(response)) << "minute " << minutes[i];
    const util::JsonArray& action = response.At("action").AsArray();
    ASSERT_EQ(action.size(), direct[i].size());
    for (std::size_t d = 0; d < action.size(); ++d) {
      EXPECT_EQ(action[d].AsInt(), direct[i][d])
          << "minute " << minutes[i] << " device " << d;
    }
  }
}

TEST_F(DispatcherTest, SuggestMinutesBatchMatchesDirectCall) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  const std::vector<int> minutes = {0, 60, 480, 481, 720, 1200, 1439};
  std::string list;
  for (int minute : minutes) {
    if (!list.empty()) list += ",";
    list += std::to_string(minute);
  }
  const auto response = Call(
      dispatcher, R"({"id": 1, "type": "suggest_minutes", "tenant": 1,
                      "minutes": [)" + list + "]}");
  ASSERT_TRUE(ResponseOk(response));
  const std::vector<fsm::ActionVector> direct =
      fleet_->SuggestMinutes(1, *overnight_, minutes);
  const util::JsonArray& actions = response.At("actions").AsArray();
  ASSERT_EQ(actions.size(), direct.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const util::JsonArray& action = actions[i].AsArray();
    ASSERT_EQ(action.size(), direct[i].size());
    for (std::size_t d = 0; d < action.size(); ++d) {
      EXPECT_EQ(action[d].AsInt(), direct[i][d]);
    }
  }
}

// The PR-8 parity pin, with the cross-tenant aggregation funnel in the
// path: a same-seed fleet with an AggregationService attached must answer
// every wire suggestion bit-identically to the fixture's direct fleet —
// aggregation is invisible to serving semantics (DESIGN.md §16).
TEST_F(DispatcherTest, SuggestParityHoldsWithAggregationInPath) {
  runtime::Fleet aggregated(*home_, TinyFleetConfig(2));
  runtime::AggregationConfig agg;
  agg.max_batch = 64;
  agg.deadline_us = 200;
  aggregated.EnableAggregation(agg);
  aggregated.Run(runtime::SimulatedWorkloadFactory(*home_, TinyWorkload()));
  ASSERT_NE(aggregated.aggregator(), nullptr);
  ASSERT_NE(aggregated.aggregator()->weight_version(0), 0u);
  Dispatcher dispatcher(aggregated, DefaultOptions(), nullptr);

  std::vector<int> minutes;
  for (int minute = 0; minute < util::kMinutesPerDay; minute += 13) {
    minutes.push_back(minute);
  }
  const std::vector<fsm::ActionVector> direct =
      fleet_->SuggestMinutes(0, *overnight_, minutes);
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    const auto response = Call(
        dispatcher,
        R"({"id": 1, "type": "suggest_action", "tenant": 0, "minute": )" +
            std::to_string(minutes[i]) + "}");
    ASSERT_TRUE(ResponseOk(response)) << "minute " << minutes[i];
    const util::JsonArray& action = response.At("action").AsArray();
    ASSERT_EQ(action.size(), direct[i].size());
    for (std::size_t d = 0; d < action.size(); ++d) {
      EXPECT_EQ(action[d].AsInt(), direct[i][d])
          << "minute " << minutes[i] << " device " << d;
    }
  }

  // The batch request for the other tenant rides the same funnel.
  const std::vector<int> batch_minutes = {0, 60, 480, 481, 720, 1200, 1439};
  std::string list;
  for (int minute : batch_minutes) {
    if (!list.empty()) list += ",";
    list += std::to_string(minute);
  }
  const auto response = Call(
      dispatcher, R"({"id": 2, "type": "suggest_minutes", "tenant": 1,
                      "minutes": [)" + list + "]}");
  ASSERT_TRUE(ResponseOk(response));
  const std::vector<fsm::ActionVector> batch_direct =
      fleet_->SuggestMinutes(1, *overnight_, batch_minutes);
  const util::JsonArray& actions = response.At("actions").AsArray();
  ASSERT_EQ(actions.size(), batch_direct.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const util::JsonArray& action = actions[i].AsArray();
    ASSERT_EQ(action.size(), batch_direct[i].size());
    for (std::size_t d = 0; d < action.size(); ++d) {
      EXPECT_EQ(action[d].AsInt(), batch_direct[i][d]);
    }
  }
  // The traffic really went through the aggregator, not the fallback.
  EXPECT_GE(aggregated.aggregator()->stats().rows_inferred,
            minutes.size() + batch_minutes.size());
}

TEST_F(DispatcherTest, IngestCountsGoodAndBadLines) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  // Two real log lines (round-tripped through the event model) plus junk.
  events::Event event;
  event.date = util::SimTime(480);
  event.device_label = "Hue lamp";
  event.capability = "switch";
  event.attribute = "power";
  event.attribute_value = "on";
  event.command = "on";
  const std::string good = event.ToLogLine();
  util::JsonArray lines;
  lines.emplace_back(good);
  lines.emplace_back("not an event");
  lines.emplace_back(good);
  lines.emplace_back(42);  // not even a string
  util::JsonObject request;
  request["id"] = 5;
  request["type"] = "ingest";
  request["tenant"] = 0;
  request["lines"] = util::JsonValue(std::move(lines));
  const auto response =
      Call(dispatcher, util::JsonValue(std::move(request)).Dump());
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_EQ(response.At("accepted").AsInt(), 2);
  EXPECT_EQ(response.At("rejected").AsInt(), 2);
  EXPECT_EQ(response.At("buffered").AsInt(), 2);
  EXPECT_EQ(dispatcher.ingested_events(0), 2u);
  EXPECT_EQ(dispatcher.ingested_events(1), 0u);
}

TEST_F(DispatcherTest, IngestCapBoundsTheBuffer) {
  DispatcherOptions options = DefaultOptions();
  options.max_ingest_events = 3;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  events::Event event;
  event.date = util::SimTime(1);
  const std::string line = event.ToLogLine();
  util::JsonArray lines;
  for (int i = 0; i < 10; ++i) lines.emplace_back(line);
  util::JsonObject request;
  request["id"] = 1;
  request["type"] = "ingest";
  request["tenant"] = 1;
  request["lines"] = util::JsonValue(std::move(lines));
  const auto response =
      Call(dispatcher, util::JsonValue(std::move(request)).Dump());
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_EQ(response.At("accepted").AsInt(), 3);
  EXPECT_EQ(response.At("rejected").AsInt(), 7);
  EXPECT_EQ(dispatcher.ingested_events(1), 3u);
}

TEST_F(DispatcherTest, MetricsAndHealthReportFleetShape) {
  runtime::Fleet& fleet = *fleet_;
  Dispatcher dispatcher(fleet, DefaultOptions(), &fleet.Metrics());
  auto response = Call(dispatcher, R"({"id": 1, "type": "metrics"})");
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_TRUE(response.At("fleet").is_object());
  EXPECT_TRUE(response.At("tenants").is_object());

  response = Call(dispatcher, R"({"id": 2, "type": "health"})");
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_EQ(response.At("tenants").AsInt(), 2);
  EXPECT_EQ(response.At("completed").AsInt(), 2);
  EXPECT_EQ(response.At("quarantined").AsInt(), 0);
}

TEST_F(DispatcherTest, RequestCountersTrackDispatches) {
  obs::Registry registry;
  Dispatcher dispatcher(*fleet_, DefaultOptions(), &registry);
  Call(dispatcher, R"({"id": 1, "type": "ping"})");
  Call(dispatcher, R"({"id": 2, "type": "ping"})");
  Call(dispatcher, R"({"id": 3, "type": "health"})");
  Call(dispatcher, "garbage");
  EXPECT_EQ(registry.GetCounter("serve.req.ping")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("serve.req.health")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("serve.responses_ok")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("serve.responses_error")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("serve.bad_request")->Value(), 1u);
}

TEST_F(DispatcherTest, CheckpointRequestWritesTenantFiles) {
  const std::string dir = testing::TempDir() + "/serve_dispatcher_ckpt";
  for (std::size_t i = 0; i < 4; ++i) {
    util::io::RemoveFile(runtime::Fleet::TenantCheckpointPath(dir, i));
  }
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  const auto response = Call(
      dispatcher,
      R"({"id": 1, "type": "checkpoint", "dir": ")" + dir + R"("})");
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_EQ(response.At("saved").AsInt(), 2);
  EXPECT_EQ(response.At("failed").AsInt(), 0);
  EXPECT_TRUE(
      util::io::FileExists(runtime::Fleet::TenantCheckpointPath(dir, 0)));
  EXPECT_TRUE(
      util::io::FileExists(runtime::Fleet::TenantCheckpointPath(dir, 1)));
}

TEST_F(DispatcherTest, CheckpointWithoutDirAnywhereIsBadRequest) {
  DispatcherOptions options = DefaultOptions();
  options.checkpoint_dir.clear();
  Dispatcher dispatcher(*fleet_, options, nullptr);
  const auto response = Call(dispatcher, R"({"id": 1, "type": "checkpoint"})");
  EXPECT_EQ(response.At("error").AsString(), kErrBadRequest);
}

TEST_F(DispatcherTest, StallRefusedUnlessEnabled) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  const auto response = Call(dispatcher, R"({"id": 1, "type": "stall"})");
  EXPECT_EQ(response.At("error").AsString(), kErrBadRequest);
}

TEST_F(DispatcherTest, ShutdownFiresCallbackOnce) {
  Dispatcher dispatcher(*fleet_, DefaultOptions(), nullptr);
  int fired = 0;
  dispatcher.SetShutdownCallback([&fired] { ++fired; });
  EXPECT_TRUE(ResponseOk(Call(dispatcher, R"({"id": 1, "type": "shutdown"})")));
  EXPECT_TRUE(ResponseOk(Call(dispatcher, R"({"id": 2, "type": "shutdown"})")));
  EXPECT_EQ(fired, 1);
}

TEST_F(DispatcherTest, FlushForDrainWritesCheckpointsAndIngest) {
  const std::string dir = testing::TempDir() + "/serve_dispatcher_drain";
  for (std::size_t i = 0; i < 4; ++i) {
    util::io::RemoveFile(runtime::Fleet::TenantCheckpointPath(dir, i));
    util::io::RemoveFile(dir + "/ingest-tenant-" + std::to_string(i) +
                         ".log");
  }
  DispatcherOptions options = DefaultOptions();
  options.checkpoint_dir = dir;
  Dispatcher dispatcher(*fleet_, options, nullptr);
  events::Event event;
  event.date = util::SimTime(77);
  event.device_label = "thermostat";
  util::JsonArray lines;
  lines.emplace_back(event.ToLogLine());
  util::JsonObject request;
  request["id"] = 1;
  request["type"] = "ingest";
  request["tenant"] = 1;
  request["lines"] = util::JsonValue(std::move(lines));
  ASSERT_TRUE(
      ResponseOk(Call(dispatcher, util::JsonValue(std::move(request)).Dump())));

  const DrainFlushReport report = dispatcher.FlushForDrain();
  EXPECT_EQ(report.checkpoints_saved, 2u);
  EXPECT_EQ(report.checkpoints_failed, 0u);
  EXPECT_EQ(report.ingest_files_written, 1u);
  EXPECT_EQ(report.ingest_events_flushed, 1u);
  const std::string flushed =
      util::io::ReadFile(dir + "/ingest-tenant-1.log");
  EXPECT_EQ(flushed, event.ToLogLine() + "\n");
  // The buffer was drained: a second flush writes no ingest files.
  EXPECT_EQ(dispatcher.ingested_events(1), 0u);
  EXPECT_EQ(dispatcher.FlushForDrain().ingest_files_written, 0u);
}

}  // namespace
}  // namespace jarvis::serve
