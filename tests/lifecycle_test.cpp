// Durable learned-state lifecycle (DESIGN.md §14): checkpoint round trips,
// crash recovery against the jobs=1 oracle, storage-fault chaos, monitor
// deny-until-reestablished, and dynamic tenant add/remove with warm starts.
//
// The acceptance contract pinned here: a fleet killed after checkpointing
// and restored from disk re-optimizes with BIT-IDENTICAL deterministic
// metrics to an uninterrupted sequential run, commits zero violations, and
// every injected storage fault is detected (checksums/lengths) and
// degrades per-section to fail-safe — never a crash, never silent garbage.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/jarvis.h"
#include "core/online_monitor.h"
#include "faults/storage.h"
#include "fsm/device_library.h"
#include "persist/checkpoint.h"
#include "runtime/fleet.h"
#include "util/io.h"
#include "util/rng.h"

namespace jarvis {
namespace {

using core::Jarvis;
using core::JarvisConfig;
using runtime::Fleet;
using runtime::FleetCheckpointReport;
using runtime::FleetConfig;
using runtime::FleetReport;
using runtime::SimulatedWorkloadFactory;
using runtime::SimulatedWorkloadOptions;
using runtime::TenantWorkload;

// Tiny pipelines: lifecycle mechanics, not policy quality, are under test.
FleetConfig CheapConfig(std::size_t tenants, std::size_t jobs) {
  FleetConfig config;
  config.tenants = tenants;
  config.jobs = jobs;
  config.fleet_seed = 77;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = 2;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 3;
  return config;
}

SimulatedWorkloadOptions CheapWorkload() {
  SimulatedWorkloadOptions options;
  options.learning_days = 2;
  options.benign_anomaly_samples = 200;
  return options;
}

class LifecycleFixture : public ::testing::Test {
 protected:
  static const fsm::EnvironmentFsm& Home() {
    static const fsm::EnvironmentFsm home = fsm::BuildFullHome();
    return home;
  }

  // A fresh per-test scratch directory under the gtest temp root.
  std::string ScratchDir(const std::string& tag) const {
    const std::string dir = testing::TempDir() + "/lifecycle_" + tag;
    // Clear any stale tenant files from a previous run of this binary.
    for (std::size_t i = 0; i < 8; ++i) {
      util::io::RemoveFile(Fleet::TenantCheckpointPath(dir, i));
    }
    return dir;
  }
};

// Restored-vs-oracle comparison: learning_episodes is deliberately absent
// (a warm-started tenant skips the learning phase), everything the
// optimized day produced must match bit-for-bit.
void ExpectPlansIdentical(const FleetReport& oracle,
                          const FleetReport& restored) {
  ASSERT_EQ(oracle.tenants.size(), restored.tenants.size());
  for (std::size_t i = 0; i < oracle.tenants.size(); ++i) {
    const runtime::TenantResult& a = oracle.tenants[i];
    const runtime::TenantResult& b = restored.tenants[i];
    SCOPED_TRACE(::testing::Message() << "tenant " << i);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.plan.optimized_metrics.energy_kwh,
              b.plan.optimized_metrics.energy_kwh);
    EXPECT_EQ(a.plan.optimized_metrics.cost_usd,
              b.plan.optimized_metrics.cost_usd);
    EXPECT_EQ(a.plan.optimized_metrics.comfort_error_c_min,
              b.plan.optimized_metrics.comfort_error_c_min);
    EXPECT_EQ(a.plan.normal_metrics.energy_kwh,
              b.plan.normal_metrics.energy_kwh);
    EXPECT_EQ(a.plan.violations, b.plan.violations);
    EXPECT_EQ(a.plan.train.greedy_reward, b.plan.train.greedy_reward);
    EXPECT_EQ(a.plan.train.episode_rewards, b.plan.train.episode_rewards);
  }
  EXPECT_EQ(oracle.total_energy_kwh, restored.total_energy_kwh);
  EXPECT_EQ(oracle.total_cost_usd, restored.total_cost_usd);
  EXPECT_EQ(oracle.total_violations, restored.total_violations);
}

TEST_F(LifecycleFixture, JarvisCheckpointRoundTripRestoresLearnedState) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const TenantWorkload workload = factory(0, 11);

  JarvisConfig config = CheapConfig(1, 1).tenant_config;
  Jarvis original(Home(), config);
  ASSERT_GT(original.LearnFromEvents(workload.events, workload.initial_state,
                                     workload.start, workload.labeled),
            0u);
  const core::DayPlan original_plan =
      original.OptimizeDay(workload.day, workload.weights);

  const std::string path = ScratchDir("roundtrip") + "/jarvis.ckpt";
  util::io::CreateDirectories(ScratchDir("roundtrip"));
  original.SaveCheckpoint(path);

  Jarvis restored(Home(), config);
  const Jarvis::RestoreReport report = restored.LoadCheckpoint(path);
  EXPECT_TRUE(report.file_found);
  EXPECT_TRUE(report.meta_valid);
  EXPECT_TRUE(report.spl_restored);
  EXPECT_TRUE(report.dqn_staged);
  EXPECT_TRUE(report.issues.empty()) << persist::FormatIssues(report.issues);
  EXPECT_EQ(report.sections_failed, 0u);
  ASSERT_TRUE(restored.learned());
  // The whitelist survives the trip bit-for-bit (%.17g FP round trip), so
  // a restored pipeline audits exactly like the one that learned.
  EXPECT_EQ(restored.learner().ToJson().Dump(),
            original.learner().ToJson().Dump());
  EXPECT_EQ(restored.Health().checkpoint_sections_restored,
            report.sections_restored);
  EXPECT_EQ(restored.Health().checkpoint_sections_failed, 0u);

  // Cold-path parity: the restored pipeline's OptimizeDay reproduces the
  // original's day plan exactly (warm_start_dqn is off by default).
  const core::DayPlan restored_plan =
      restored.OptimizeDay(workload.day, workload.weights);
  EXPECT_EQ(restored_plan.optimized_metrics.energy_kwh,
            original_plan.optimized_metrics.energy_kwh);
  EXPECT_EQ(restored_plan.optimized_metrics.cost_usd,
            original_plan.optimized_metrics.cost_usd);
  EXPECT_EQ(restored_plan.train.greedy_reward,
            original_plan.train.greedy_reward);
  EXPECT_EQ(restored_plan.violations, original_plan.violations);

  // Missing-file recovery: a cold start, reported, never thrown.
  Jarvis cold(Home(), config);
  const Jarvis::RestoreReport missing =
      cold.LoadCheckpoint(ScratchDir("roundtrip") + "/nonexistent.ckpt");
  EXPECT_FALSE(missing.file_found);
  EXPECT_FALSE(cold.learned());
}

TEST_F(LifecycleFixture, CrashRecoveryMatchesUninterruptedOracle) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const std::string dir = ScratchDir("crash");

  // The uninterrupted sequential oracle.
  Fleet oracle(Home(), CheapConfig(2, 1));
  const FleetReport oracle_report = oracle.Run(factory);
  ASSERT_EQ(oracle_report.completed, 2u);
  ASSERT_EQ(oracle_report.quarantined, 0u);

  // The doomed fleet: learn + optimize, checkpoint every tenant, then die
  // (scope exit — the process state is gone, only the files survive).
  {
    Fleet doomed(Home(), CheapConfig(2, 1));
    ASSERT_EQ(doomed.Run(factory).completed, 2u);
    const FleetCheckpointReport saved = doomed.SaveCheckpoints(dir);
    ASSERT_EQ(saved.succeeded, 2u);
    ASSERT_EQ(saved.failed, 0u);
    for (const auto& tenant : saved.tenants) {
      EXPECT_EQ(tenant.write_attempts, 1);
    }
  }

  // Recovery: a fresh fleet restores from disk and re-runs.
  Fleet recovered(Home(), CheapConfig(2, 1));
  const FleetCheckpointReport restored = recovered.RestoreCheckpoints(dir);
  ASSERT_EQ(restored.succeeded, 2u);
  ASSERT_EQ(restored.failed, 0u);
  for (const auto& tenant : restored.tenants) {
    EXPECT_TRUE(tenant.restore.spl_restored);
    EXPECT_TRUE(tenant.restore.meta_valid);
  }

  const FleetReport rerun = recovered.Run(factory);
  EXPECT_EQ(rerun.completed, 2u);
  EXPECT_EQ(rerun.warm_started, 2u);
  for (const auto& tenant : rerun.tenants) {
    EXPECT_TRUE(tenant.warm_started);
    EXPECT_EQ(tenant.learning_episodes, 0u);  // learning phase skipped
  }

  // The restored fleet commits zero violations and reproduces the oracle's
  // optimized day bit-for-bit.
  EXPECT_EQ(rerun.total_violations, 0u);
  ExpectPlansIdentical(oracle_report, rerun);
}

TEST_F(LifecycleFixture, EveryStorageFaultKindIsDetectedAndDegradesFailSafe) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());

  const struct {
    faults::StorageFaultKind kind;
    const char* tag;
  } kinds[] = {
      {faults::StorageFaultKind::kTornWrite, "torn"},
      {faults::StorageFaultKind::kTruncation, "trunc"},
      {faults::StorageFaultKind::kBitFlip, "bitflip"},
      {faults::StorageFaultKind::kRenameFail, "rename"},
  };

  for (const auto& entry : kinds) {
    SCOPED_TRACE(faults::StorageFaultKindName(entry.kind));
    const std::string dir = ScratchDir(std::string("fault_") + entry.tag);

    Fleet fleet(Home(), CheapConfig(1, 1));
    ASSERT_EQ(fleet.Run(factory).completed, 1u);

    faults::StorageFaultSpec spec;
    spec.kind = entry.kind;
    spec.rate = 1.0;
    spec.keep_fraction = 0.5;
    spec.bit_flips = 16;
    faults::StorageFaultInjector injector({spec}, 99);

    const FleetCheckpointReport saved = fleet.SaveCheckpoints(dir, &injector);
    EXPECT_GE(injector.counters().total(), 1u);

    if (entry.kind == faults::StorageFaultKind::kRenameFail) {
      // Crash-before-commit: the write fails visibly after exhausting its
      // retries and no file exists — restore is a clean cold start.
      ASSERT_EQ(saved.failed, 1u);
      EXPECT_FALSE(saved.tenants[0].error.empty());
      EXPECT_GT(saved.tenants[0].write_attempts, 1);
      EXPECT_FALSE(
          util::io::FileExists(Fleet::TenantCheckpointPath(dir, 0)));

      Fleet recovered(Home(), CheapConfig(1, 1));
      const FleetCheckpointReport restored = recovered.RestoreCheckpoints(dir);
      EXPECT_EQ(restored.succeeded, 0u);
      EXPECT_FALSE(restored.tenants[0].restore.file_found);
      const FleetReport rerun = recovered.Run(factory);
      EXPECT_EQ(rerun.completed, 1u);
      EXPECT_EQ(rerun.warm_started, 0u);  // cold start, learning re-ran
      EXPECT_EQ(rerun.total_violations, 0u);
      continue;
    }

    // Corrupting kinds: the bytes land, but restore must DETECT the damage
    // (checksums / bounded lengths), degrade per-section, and never trust
    // a corrupt section or crash.
    ASSERT_EQ(saved.succeeded, 1u);
    Fleet recovered(Home(), CheapConfig(1, 1));
    const FleetCheckpointReport restored = recovered.RestoreCheckpoints(dir);
    const auto& result = restored.tenants[0];
    EXPECT_TRUE(result.restore.file_found);
    const bool damage_visible = !result.restore.issues.empty() ||
                                result.restore.sections_failed > 0 ||
                                !result.restore.spl_restored;
    EXPECT_TRUE(damage_visible)
        << "fault landed but restore reported a clean full recovery";

    // Whatever was lost, the tenant still serves: a cold (or partially
    // restored) re-run completes with zero violations, and the restore
    // degradation is visible in its health.
    const FleetReport rerun = recovered.Run(factory);
    EXPECT_EQ(rerun.completed, 1u);
    EXPECT_EQ(rerun.quarantined, 0u);
    EXPECT_EQ(rerun.total_violations, 0u);
    if (result.restore.sections_failed > 0) {
      EXPECT_GT(rerun.tenants[0].health.checkpoint_sections_failed, 0u);
      EXPECT_TRUE(rerun.tenants[0].health.degraded());
      EXPECT_GT(rerun.degraded, 0u);
    }
  }
}

TEST_F(LifecycleFixture, RestoredMonitorDeniesUntilStateReestablished) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const TenantWorkload workload = factory(0, 5);

  JarvisConfig config = CheapConfig(1, 1).tenant_config;
  Jarvis pipeline(Home(), config);
  ASSERT_GT(pipeline.LearnFromEvents(workload.events, workload.initial_state,
                                     workload.start, workload.labeled),
            0u);

  // Live monitor: replay the day, remember the first classified command.
  core::OnlineMonitor live(Home(), pipeline.learner(), workload.initial_state);
  const events::Event* command = nullptr;
  for (const events::Event& event : workload.events) {
    if (live.Consume(event).has_value() && command == nullptr) {
      command = &event;
    }
  }
  ASSERT_NE(command, nullptr) << "workload contained no command events";
  ASSERT_GT(live.events_consumed(), 0u);

  // Checkpoint with the monitor section, then restore into a fresh one.
  const persist::Checkpoint checkpoint = pipeline.MakeCheckpoint(&live);
  ASSERT_TRUE(checkpoint.HasSection("monitor"));

  // Two-phase recovery: the monitor's constructor requires a *learned*
  // learner, so the pipeline restores first, the monitor is built against
  // the restored learner, and a second pass picks up the monitor section
  // (sections restore independently, and re-restoring spl is idempotent).
  Jarvis restored_pipeline(Home(), config);
  ASSERT_TRUE(restored_pipeline.RestoreFrom(checkpoint).spl_restored);
  core::OnlineMonitor restored(Home(), restored_pipeline.learner(),
                               workload.initial_state);
  const Jarvis::RestoreReport report =
      restored_pipeline.RestoreFrom(checkpoint, &restored);
  EXPECT_TRUE(report.monitor_restored);
  EXPECT_EQ(restored.events_consumed(), live.events_consumed());
  EXPECT_EQ(restored.violations(), live.violations());
  EXPECT_EQ(restored.state(), live.state());

  // Deny-unsafe after restore: events may have happened during the crash
  // gap, so every device is untrusted until it reports again — the first
  // command is denied fail-safe, not classified against stale state.
  const std::size_t denials_before = restored.unknown_state_denials();
  const auto verdict = restored.Consume(*command);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, spl::Verdict::kViolation);
  EXPECT_EQ(restored.unknown_state_denials(), denials_before + 1);
}

TEST_F(LifecycleFixture, AddTenantWarmStartsFromTemplateCheckpoint) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  Fleet fleet(Home(), CheapConfig(2, 1));
  ASSERT_EQ(fleet.Run(factory).completed, 2u);

  // A new home joins the fleet, seeded from an established tenant's
  // learned state ("template home") — its first run skips learning.
  const persist::Checkpoint tmpl = fleet.tenant(0)->MakeCheckpoint();
  const std::size_t warm_index = fleet.AddTenant(tmpl);
  const std::size_t cold_index = fleet.AddTenant();
  EXPECT_EQ(warm_index, 2u);
  EXPECT_EQ(cold_index, 3u);
  // Index-stable seeds: new tenants derive like any other.
  EXPECT_EQ(fleet.tenant_seed(warm_index), util::DeriveSeed(77, 2));
  EXPECT_EQ(fleet.tenant_seed(cold_index), util::DeriveSeed(77, 3));

  const FleetReport report = fleet.Run(factory);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.warm_started, 1u);
  EXPECT_TRUE(report.tenants[warm_index].warm_started);
  EXPECT_EQ(report.tenants[warm_index].learning_episodes, 0u);
  EXPECT_FALSE(report.tenants[cold_index].warm_started);
  EXPECT_GT(report.tenants[cold_index].learning_episodes, 0u);
  EXPECT_EQ(report.total_violations, 0u);

  // A template that fails validation degrades to a cold start, never a
  // crash: hand the next tenant a corrupt checkpoint.
  persist::Checkpoint corrupt;
  corrupt.AddSection("meta", "not json at all");
  corrupt.AddSection("spl", "payload under an untrusted meta");
  const std::size_t degraded_index = fleet.AddTenant(corrupt);
  const FleetReport rerun = fleet.Run(factory);
  EXPECT_TRUE(rerun.tenants[degraded_index].completed);
  EXPECT_FALSE(rerun.tenants[degraded_index].warm_started);
  EXPECT_GT(rerun.tenants[degraded_index].health.checkpoint_sections_failed,
            0u);
}

TEST_F(LifecycleFixture, RemoveTenantTombstonesWithoutDisturbingOthers) {
  const auto factory = SimulatedWorkloadFactory(Home(), CheapWorkload());
  const std::string dir = ScratchDir("remove");

  Fleet fleet(Home(), CheapConfig(3, 1));
  ASSERT_EQ(fleet.Run(factory).completed, 3u);

  fleet.RemoveTenant(1);
  fleet.RemoveTenant(1);  // idempotent
  EXPECT_THROW(fleet.RemoveTenant(99), std::out_of_range);
  EXPECT_EQ(fleet.tenant(1), nullptr);
  EXPECT_EQ(fleet.tenant_count(), 3u);  // index preserved, never reused

  const FleetReport report = fleet.Run(factory);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_TRUE(report.tenants[1].removed);
  EXPECT_FALSE(report.tenants[1].completed);

  // Checkpointing skips the tombstone and the restore side honors it too.
  const FleetCheckpointReport saved = fleet.SaveCheckpoints(dir);
  EXPECT_EQ(saved.succeeded, 2u);
  EXPECT_EQ(saved.skipped, 1u);
  EXPECT_FALSE(util::io::FileExists(Fleet::TenantCheckpointPath(dir, 1)));
}

}  // namespace
}  // namespace jarvis
