// Tests for the SPL extensions: persistence of learnt policies, manual
// policy admission (Section V-B-1), and active learning over the benefit
// spaces (Section VI-F).
#include <gtest/gtest.h>

#include "sim/testbed.h"
#include "spl/active_learner.h"
#include "util/check.h"
#include "spl/learner.h"

namespace jarvis::spl {
namespace {

class ActiveFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 2000;
    testbed_ = new sim::Testbed(config);
    learner_ = new SafetyPolicyLearner(testbed_->home_a(), SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete learner_;
    delete testbed_;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  // A violation context: door unlock in the dead of night.
  static fsm::StateVector NightState() {
    return fsm::StateVector(testbed_->home_a().device_count(), 0);
  }
  static fsm::MiniAction NightUnlock() {
    return {0, *testbed_->home_a().device(0).FindAction("unlock")};
  }

  static sim::Testbed* testbed_;
  static SafetyPolicyLearner* learner_;
};

sim::Testbed* ActiveFixture::testbed_ = nullptr;
SafetyPolicyLearner* ActiveFixture::learner_ = nullptr;

TEST_F(ActiveFixture, PersistenceRoundTripPreservesClassification) {
  const std::string saved = learner_->ToJsonString();

  SafetyPolicyLearner restored(testbed_->home_a(), SplConfig{});
  EXPECT_FALSE(restored.learned());
  restored.LoadJsonString(saved);
  EXPECT_TRUE(restored.learned());
  EXPECT_EQ(restored.table().admitted_key_count(),
            learner_->table().admitted_key_count());

  // Classifications agree on attacks, benign anomalies, and natural
  // behavior samples.
  const auto violations = testbed_->BuildViolations();
  for (std::size_t v = 0; v < violations.size(); v += 17) {
    EXPECT_EQ(restored.Classify(violations[v].state, violations[v].action,
                                violations[v].minute),
              learner_->Classify(violations[v].state, violations[v].action,
                                 violations[v].minute));
  }
  const auto episode = testbed_->HomeALearningEpisodes().front();
  const auto original_audit = learner_->AuditEpisode(episode);
  const auto restored_audit = restored.AuditEpisode(episode);
  EXPECT_EQ(restored_audit.violations, original_audit.violations);
  EXPECT_EQ(restored_audit.safe, original_audit.safe);
}

TEST_F(ActiveFixture, PersistenceRejectsConfigMismatch) {
  const auto doc = learner_->ToJson();
  SplConfig other;
  other.count_threshold = 3;
  SafetyPolicyLearner mismatched(testbed_->home_a(), other);
  EXPECT_THROW(mismatched.LoadJson(doc), util::CheckError);
}

TEST_F(ActiveFixture, ForceAdmitCreatesManualPolicy) {
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());

  // Fire-alarm reaction: unlock the door when the temperature sensor
  // raises fire_alarm — never observed naturally (Section V-B-1).
  fsm::StateVector fire = NightState();
  fire[4] = *testbed_->home_a().device(4).FindState("fire_alarm");
  const fsm::MiniAction unlock = NightUnlock();
  EXPECT_EQ(local.ClassifyMini(fire, unlock, 2 * 60), Verdict::kViolation);
  local.mutable_table().ForceAdmit(fire, unlock, 2 * 60);
  EXPECT_EQ(local.ClassifyMini(fire, unlock, 2 * 60), Verdict::kSafe);
  // The admission is context-specific: without the alarm it stays flagged.
  EXPECT_EQ(local.ClassifyMini(NightState(), unlock, 2 * 60),
            Verdict::kViolation);
}

TEST_F(ActiveFixture, ForceAdmitSurvivesPersistence) {
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());
  fsm::StateVector fire = NightState();
  fire[4] = *testbed_->home_a().device(4).FindState("fire_alarm");
  local.mutable_table().ForceAdmit(fire, NightUnlock(), 2 * 60);

  SafetyPolicyLearner restored(testbed_->home_a(), SplConfig{});
  restored.LoadJsonString(local.ToJsonString());
  EXPECT_EQ(restored.ClassifyMini(fire, NightUnlock(), 2 * 60),
            Verdict::kSafe);
}

TEST_F(ActiveFixture, ReviewTransitionApprovalAdmits) {
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());
  ActiveLearner active(local, ActiveLearningConfig{});

  int queries = 0;
  const UserOracle approve = [&](const fsm::StateVector&,
                                 const fsm::MiniAction&, int) {
    ++queries;
    return UserJudgment::kApprove;
  };
  const auto verdict =
      active.ReviewTransition(NightState(), NightUnlock(), 2 * 60, approve);
  EXPECT_EQ(verdict, Verdict::kSafe);
  EXPECT_EQ(queries, 1);
  // Now admitted: the next review answers without querying.
  EXPECT_EQ(active.ReviewTransition(NightState(), NightUnlock(), 2 * 60,
                                    approve),
            Verdict::kSafe);
  EXPECT_EQ(queries, 1);
}

TEST_F(ActiveFixture, ReviewTransitionRejectionIsRemembered) {
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());
  ActiveLearner active(local, ActiveLearningConfig{});

  int queries = 0;
  const UserOracle reject = [&](const fsm::StateVector&,
                                const fsm::MiniAction&, int) {
    ++queries;
    return UserJudgment::kReject;
  };
  EXPECT_EQ(active.ReviewTransition(NightState(), NightUnlock(), 2 * 60,
                                    reject),
            Verdict::kViolation);
  EXPECT_EQ(active.ReviewTransition(NightState(), NightUnlock(), 2 * 60,
                                    reject),
            Verdict::kViolation);
  EXPECT_EQ(queries, 1) << "rejections are remembered, not re-asked";
  EXPECT_TRUE(active.IsConfirmedMalicious(NightState(), NightUnlock(), 2 * 60));
  EXPECT_FALSE(
      active.IsConfirmedMalicious(NightState(), NightUnlock(), 13 * 60))
      << "memory is day-part specific";
  EXPECT_EQ(active.confirmed_malicious_count(), 1u);
}

TEST_F(ActiveFixture, SafeTransitionsAreNotQueried) {
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());
  ActiveLearner active(local, ActiveLearningConfig{});
  const UserOracle panic = [](const fsm::StateVector&, const fsm::MiniAction&,
                              int) -> UserJudgment {
    ADD_FAILURE() << "oracle must not be consulted for safe behavior";
    return UserJudgment::kReject;
  };
  // Pick a whitelisted transition: any natural observation.
  const auto observations =
      fsm::ExtractTriggerActions(testbed_->HomeALearningEpisodes());
  ASSERT_FALSE(observations.empty());
  const auto& ta = observations.front();
  for (std::size_t d = 0; d < ta.action.size(); ++d) {
    if (ta.action[d] == fsm::kNoAction) continue;
    active.ReviewTransition(ta.trigger_state,
                            {static_cast<fsm::DeviceId>(d), ta.action[d]},
                            ta.minute_of_day, panic);
  }
}

TEST_F(ActiveFixture, ReviewEpisodeRespectsBudgetAndMemory) {
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());
  ActiveLearningConfig config;
  config.max_queries_per_session = 2;
  ActiveLearner active(local, config);

  // Build an episode with several injected violations.
  const auto violations = testbed_->BuildViolations();
  fsm::Episode episode = testbed_->HomeALearningEpisodes().front();
  for (std::size_t v : {0u, 30u, 60u, 90u}) {
    episode = sim::AttackGenerator::InjectIntoEpisode(testbed_->home_a(),
                                                      episode, violations[v]);
  }

  const UserOracle reject = [](const fsm::StateVector&, const fsm::MiniAction&,
                               int) { return UserJudgment::kReject; };
  const auto report = active.ReviewEpisode(episode, reject);
  EXPECT_GE(report.flags_seen, 4u);
  EXPECT_EQ(report.queried, 2u);
  EXPECT_GE(report.skipped_budget, 2u);
  EXPECT_EQ(report.rejected, 2u);

  // Second pass: the two judged flags answer from memory; the budget then
  // covers the remaining ones.
  const auto second = active.ReviewEpisode(episode, reject);
  EXPECT_EQ(second.remembered, 2u);
  EXPECT_GE(second.queried, 1u);
}

TEST_F(ActiveFixture, ApprovalMovesUnsafeBenefitIntoSafeSpace) {
  // The paper's Fig. 9 narrative: an unsafe-benefit-space action the user
  // approves becomes exploitable by the constrained agent.
  SafetyPolicyLearner local(testbed_->home_a(), SplConfig{});
  local.Learn(testbed_->HomeALearningEpisodes(), testbed_->BuildTrainingSet());
  ActiveLearner active(local, ActiveLearningConfig{});

  // "Run the dishwasher at 04:00 off-peak" — off-whitelist (wrong
  // day-part) but cost-beneficial.
  const auto dishwasher = testbed_->home_a().DeviceIdByLabel("dishwasher");
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  state[static_cast<std::size_t>(dishwasher)] =
      *testbed_->home_a().device(dishwasher).FindState("idle");
  const fsm::MiniAction start{
      dishwasher,
      *testbed_->home_a().device(dishwasher).FindAction("start_cycle")};
  ASSERT_EQ(local.ClassifyMini(state, start, 4 * 60), Verdict::kViolation);

  const UserOracle approve = [](const fsm::StateVector&,
                                const fsm::MiniAction&, int) {
    return UserJudgment::kApprove;
  };
  active.ReviewTransition(state, start, 4 * 60, approve);
  EXPECT_EQ(local.ClassifyMini(state, start, 4 * 60), Verdict::kSafe);
  EXPECT_TRUE(local.table().IsMiniActionSafe(state, start, 4 * 60));
}

}  // namespace
}  // namespace jarvis::spl
