#include <gtest/gtest.h>

#include "fsm/device_library.h"
#include "rl/dqn_agent.h"
#include "rl/tabular_agent.h"
#include "rl/trainer.h"
#include "sim/testbed.h"

namespace jarvis::rl {
namespace {

class AgentFixture : public ::testing::Test {
 protected:
  AgentFixture() : home_(fsm::BuildExampleHome()), codec_(home_.codec()) {}

  std::vector<bool> AllOn() const {
    return std::vector<bool>(codec_.mini_action_count(), true);
  }
  std::vector<bool> NoOpsOnly() const {
    std::vector<bool> mask(codec_.mini_action_count(), false);
    for (std::size_t d = 0; d < codec_.device_count(); ++d) {
      mask[codec_.NoOpSlot(static_cast<fsm::DeviceId>(d))] = true;
    }
    return mask;
  }

  fsm::EnvironmentFsm home_;
  const fsm::StateCodec& codec_;
};

TEST_F(AgentFixture, SelectActionRespectsMask) {
  DqnConfig config;
  config.epsilon = 1.0;  // fully random: stress the mask
  DqnAgent agent(4, codec_, config);
  const std::vector<double> features = {0.1, 0.2, 0.3, 0.4};
  std::vector<bool> mask = NoOpsOnly();
  // Allow exactly one real action: light power_on.
  const std::size_t light_on = codec_.MiniActionSlot({2, 1});
  mask[light_on] = true;
  for (int i = 0; i < 100; ++i) {
    const auto action = agent.SelectAction(features, mask, false);
    for (std::size_t d = 0; d < action.size(); ++d) {
      if (action[d] == fsm::kNoAction) continue;
      EXPECT_EQ(d, 2u);
      EXPECT_EQ(action[d], 1);
    }
  }
}

TEST_F(AgentFixture, GreedyModeIsDeterministic) {
  DqnAgent agent(4, codec_, DqnConfig{});
  const std::vector<double> features = {0.5, -0.5, 0.2, 0.0};
  const auto mask = AllOn();
  const auto first = agent.SelectAction(features, mask, true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(agent.SelectAction(features, mask, true), first);
  }
}

TEST_F(AgentFixture, MaskWidthValidated) {
  DqnAgent agent(4, codec_, DqnConfig{});
  EXPECT_THROW(agent.SelectAction({0, 0, 0, 0}, {true, false}, true),
               std::invalid_argument);
}

TEST_F(AgentFixture, ReplayNoOpUntilBatchAvailable) {
  DqnConfig config;
  config.batch_size = 8;
  DqnAgent agent(2, codec_, config);
  EXPECT_DOUBLE_EQ(agent.Replay(), 0.0);
  for (int i = 0; i < 7; ++i) {
    Experience experience;
    experience.features = {0.0, 1.0};
    experience.taken_slots = {codec_.NoOpSlot(0)};
    experience.reward = 1.0;
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  EXPECT_DOUBLE_EQ(agent.Replay(), 0.0);
  EXPECT_EQ(agent.replay_size(), 7u);
}

TEST_F(AgentFixture, QLearningPropagatesRewardToTakenSlot) {
  DqnConfig config;
  config.batch_size = 4;
  config.gamma = 0.0;  // pure immediate reward
  config.epsilon = 0.0;
  DqnAgent agent(2, codec_, config);
  const std::vector<double> features = {1.0, 0.0};
  const std::size_t good_slot = codec_.MiniActionSlot({2, 1});
  const std::size_t bad_slot = codec_.MiniActionSlot({2, 0});
  for (int i = 0; i < 200; ++i) {
    Experience good;
    good.features = features;
    good.taken_slots = {good_slot};
    good.reward = 1.0;
    good.done = true;
    agent.Remember(std::move(good));
    Experience bad;
    bad.features = features;
    bad.taken_slots = {bad_slot};
    bad.reward = -1.0;
    bad.done = true;
    agent.Remember(std::move(bad));
  }
  for (int i = 0; i < 600; ++i) agent.Replay();
  const auto q = agent.QValues(features);
  EXPECT_GT(q[good_slot], 0.5);
  EXPECT_LT(q[bad_slot], -0.5);
}

TEST_F(AgentFixture, EpsilonDecaysOnlyBelowPreferableLoss) {
  DqnConfig config;
  config.batch_size = 2;
  config.preferable_loss = 1e-12;  // unreachable: epsilon must not decay
  DqnAgent agent(2, codec_, config);
  for (int i = 0; i < 10; ++i) {
    Experience experience;
    experience.features = {0.1, 0.2};
    experience.taken_slots = {0};
    experience.reward = 5.0;
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  for (int i = 0; i < 20; ++i) agent.Replay();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
}

TEST_F(AgentFixture, SnapshotRestoreRoundTrip) {
  DqnAgent agent(2, codec_, DqnConfig{});
  const std::vector<double> features = {0.3, 0.6};
  EXPECT_FALSE(agent.has_snapshot());
  EXPECT_THROW(agent.RestoreSnapshot(), std::logic_error);
  const auto before = agent.QValues(features);
  agent.SaveSnapshot();
  // Perturb via training.
  for (int i = 0; i < 50; ++i) {
    Experience experience;
    experience.features = features;
    experience.taken_slots = {0};
    experience.reward = 10.0;
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  for (int i = 0; i < 50; ++i) agent.Replay();
  EXPECT_NE(agent.QValues(features)[0], before[0]);
  agent.RestoreSnapshot();
  EXPECT_DOUBLE_EQ(agent.QValues(features)[0], before[0]);
}

TEST_F(AgentFixture, TabularAgentLearnsContextualBandits) {
  TabularConfig config;
  config.epsilon = 0.0;
  TabularQAgent agent(home_, config);
  const fsm::StateVector state = {0, 0, 0, 2, 2};
  fsm::ActionVector good(home_.device_count(), fsm::kNoAction);
  good[2] = 1;
  fsm::ActionVector bad(home_.device_count(), fsm::kNoAction);
  bad[2] = 0;
  const auto mask = AllOn();
  for (int i = 0; i < 100; ++i) {
    agent.Update(state, 600, good, 1.0, state, 601, mask, true);
    agent.Update(state, 600, bad, -1.0, state, 601, mask, true);
  }
  EXPECT_GT(agent.QValue(state, 600, {2, 1}), 0.9);
  EXPECT_LT(agent.QValue(state, 600, {2, 0}), -0.9);
  const auto action = agent.SelectAction(state, 600, mask, true);
  EXPECT_EQ(action[2], 1);
  EXPECT_GT(agent.table_size(), 0u);
}

TEST_F(AgentFixture, TabularEpsilonDecay) {
  TabularConfig config;
  config.epsilon = 1.0;
  config.epsilon_decay = 0.5;
  config.epsilon_min = 0.3;
  TabularQAgent agent(home_, config);
  agent.DecayEpsilon();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.5);
  agent.DecayEpsilon();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.3);
  agent.DecayEpsilon();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.3);
}

TEST(TrainerIntegration, ImprovesOverRandomPolicyAndKeepsBestSnapshot) {
  sim::TestbedConfig testbed_config;
  testbed_config.benign_anomaly_samples = 1500;
  sim::Testbed testbed(testbed_config);
  spl::SafetyPolicyLearner learner(testbed.home_a(), spl::SplConfig{});
  learner.Learn(testbed.HomeALearningEpisodes(), testbed.BuildTrainingSet());
  const sim::DayTrace natural = testbed.home_b_data().Day(10);

  IoTEnvConfig env_config;
  env_config.decision_interval_minutes = 15;
  IoTEnv env(testbed.home_a(), natural, sim::ThermalConfig{}, &learner,
             env_config);
  DqnConfig dqn_config;
  dqn_config.seed = 11;
  DqnAgent agent(env.feature_width(), testbed.home_a().codec(), dqn_config);

  TrainerConfig trainer_config;
  trainer_config.episodes = 10;
  const TrainResult result = Train(env, agent, trainer_config);
  ASSERT_EQ(result.episode_rewards.size(), 10u);
  // Constrained training must commit zero violations.
  EXPECT_EQ(result.training_violations, 0u);
  EXPECT_EQ(result.greedy_violations, 0u);
  // The restored best policy is at least as good as the mean training
  // episode (it was selected greedily).
  double mean = 0.0;
  for (double r : result.episode_rewards) mean += r;
  mean /= static_cast<double>(result.episode_rewards.size());
  EXPECT_GE(result.greedy_reward, mean - 50.0);
  EXPECT_TRUE(result.greedy_episode.IsComplete());
}

}  // namespace
}  // namespace jarvis::rl
