#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "fsm/device_library.h"
#include "rl/dqn_agent.h"
#include "rl/tabular_agent.h"
#include "rl/trainer.h"
#include "sim/testbed.h"
#include "util/json.h"

namespace jarvis::rl {
namespace {

class AgentFixture : public ::testing::Test {
 protected:
  AgentFixture() : home_(fsm::BuildExampleHome()), codec_(home_.codec()) {}

  std::vector<bool> AllOn() const {
    return std::vector<bool>(codec_.mini_action_count(), true);
  }
  std::vector<bool> NoOpsOnly() const {
    std::vector<bool> mask(codec_.mini_action_count(), false);
    for (std::size_t d = 0; d < codec_.device_count(); ++d) {
      mask[codec_.NoOpSlot(static_cast<fsm::DeviceId>(d))] = true;
    }
    return mask;
  }

  fsm::EnvironmentFsm home_;
  const fsm::StateCodec& codec_;
};

TEST_F(AgentFixture, SelectActionRespectsMask) {
  DqnConfig config;
  config.epsilon = 1.0;  // fully random: stress the mask
  DqnAgent agent(4, codec_, config);
  const std::vector<double> features = {0.1, 0.2, 0.3, 0.4};
  std::vector<bool> mask = NoOpsOnly();
  // Allow exactly one real action: light power_on.
  const std::size_t light_on = codec_.MiniActionSlot({2, 1});
  mask[light_on] = true;
  for (int i = 0; i < 100; ++i) {
    const auto action = agent.SelectAction(features, mask, false);
    for (std::size_t d = 0; d < action.size(); ++d) {
      if (action[d] == fsm::kNoAction) continue;
      EXPECT_EQ(d, 2u);
      EXPECT_EQ(action[d], 1);
    }
  }
}

TEST_F(AgentFixture, GreedyModeIsDeterministic) {
  DqnAgent agent(4, codec_, DqnConfig{});
  const std::vector<double> features = {0.5, -0.5, 0.2, 0.0};
  const auto mask = AllOn();
  const auto first = agent.SelectAction(features, mask, true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(agent.SelectAction(features, mask, true), first);
  }
}

TEST_F(AgentFixture, MaskWidthValidated) {
  DqnAgent agent(4, codec_, DqnConfig{});
  EXPECT_THROW(agent.SelectAction({0, 0, 0, 0}, {true, false}, true),
               std::invalid_argument);
}

TEST_F(AgentFixture, ReplayNoOpUntilBatchAvailable) {
  DqnConfig config;
  config.batch_size = 8;
  DqnAgent agent(2, codec_, config);
  EXPECT_DOUBLE_EQ(agent.Replay(), 0.0);
  for (int i = 0; i < 7; ++i) {
    Experience experience;
    experience.features = {0.0, 1.0};
    experience.taken_slots = {codec_.NoOpSlot(0)};
    experience.reward = 1.0;
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  EXPECT_DOUBLE_EQ(agent.Replay(), 0.0);
  EXPECT_EQ(agent.replay_size(), 7u);
}

TEST_F(AgentFixture, QLearningPropagatesRewardToTakenSlot) {
  DqnConfig config;
  config.batch_size = 4;
  config.gamma = 0.0;  // pure immediate reward
  config.epsilon = 0.0;
  DqnAgent agent(2, codec_, config);
  const std::vector<double> features = {1.0, 0.0};
  const std::size_t good_slot = codec_.MiniActionSlot({2, 1});
  const std::size_t bad_slot = codec_.MiniActionSlot({2, 0});
  for (int i = 0; i < 200; ++i) {
    Experience good;
    good.features = features;
    good.taken_slots = {good_slot};
    good.reward = 1.0;
    good.done = true;
    agent.Remember(std::move(good));
    Experience bad;
    bad.features = features;
    bad.taken_slots = {bad_slot};
    bad.reward = -1.0;
    bad.done = true;
    agent.Remember(std::move(bad));
  }
  for (int i = 0; i < 600; ++i) agent.Replay();
  const auto q = agent.QValues(features);
  EXPECT_GT(q[good_slot], 0.5);
  EXPECT_LT(q[bad_slot], -0.5);
}

TEST_F(AgentFixture, EpsilonDecaysOnlyBelowPreferableLoss) {
  DqnConfig config;
  config.batch_size = 2;
  config.preferable_loss = 1e-12;  // unreachable: epsilon must not decay
  DqnAgent agent(2, codec_, config);
  for (int i = 0; i < 10; ++i) {
    Experience experience;
    experience.features = {0.1, 0.2};
    experience.taken_slots = {0};
    experience.reward = 5.0;
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  for (int i = 0; i < 20; ++i) agent.Replay();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
}

TEST_F(AgentFixture, SnapshotRestoreRoundTrip) {
  DqnAgent agent(2, codec_, DqnConfig{});
  const std::vector<double> features = {0.3, 0.6};
  EXPECT_FALSE(agent.has_snapshot());
  EXPECT_THROW(agent.RestoreSnapshot(), std::logic_error);
  const auto before = agent.QValues(features);
  agent.SaveSnapshot();
  // Perturb via training.
  for (int i = 0; i < 50; ++i) {
    Experience experience;
    experience.features = features;
    experience.taken_slots = {0};
    experience.reward = 10.0;
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  for (int i = 0; i < 50; ++i) agent.Replay();
  EXPECT_NE(agent.QValues(features)[0], before[0]);
  agent.RestoreSnapshot();
  EXPECT_DOUBLE_EQ(agent.QValues(features)[0], before[0]);
}

// Trains just enough that the agent's state (weights, optimizer moments,
// epsilon, last loss, replay memory) is all non-trivial before a round trip.
void NudgeAgent(DqnAgent& agent, const fsm::StateCodec& codec) {
  const std::size_t slot = codec.MiniActionSlot({2, 1});
  for (int i = 0; i < 40; ++i) {
    Experience experience;
    experience.features = {0.1 * i, 1.0 - 0.01 * i, 0.5, -0.3};
    experience.taken_slots = {slot};
    experience.reward = (i % 2 == 0) ? 1.0 : -1.0;
    // Full-width successor observation: the replay serializer validates
    // every entry against the agent's widths, so experiences destined for
    // a checkpoint must carry a complete next state even when done.
    experience.next_features = {0.1 * i, 0.9, 0.4, -0.2};
    experience.next_mask =
        std::vector<bool>(codec.mini_action_count(), true);
    experience.done = true;
    agent.Remember(std::move(experience));
  }
  for (int i = 0; i < 30; ++i) agent.Replay();
}

TEST_F(AgentFixture, AgentJsonRoundTripRestoresThePolicyExactly) {
  DqnConfig config;
  config.batch_size = 8;
  config.seed = 31;
  DqnAgent original(4, codec_, config);
  NudgeAgent(original, codec_);

  DqnAgent restored(4, codec_, config);
  restored.LoadJson(original.ToJson());

  EXPECT_DOUBLE_EQ(restored.epsilon(), original.epsilon());
  EXPECT_DOUBLE_EQ(restored.last_loss(), original.last_loss());
  // Replay memory is not carried by default; a warm-started tenant
  // regenerates experience.
  EXPECT_EQ(restored.replay_size(), 0u);

  const auto mask = AllOn();
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> features = {0.05 * trial, -0.1 * trial, 0.2,
                                          0.9};
    EXPECT_EQ(restored.QValues(features), original.QValues(features));
    EXPECT_EQ(restored.SelectAction(features, mask, true),
              original.SelectAction(features, mask, true));
    EXPECT_EQ(restored.GreedyActionFromQ(original.QValues(features), mask),
              original.GreedyActionFromQ(original.QValues(features), mask));
  }
}

TEST_F(AgentFixture, AgentRoundTripCanCarryReplayMemory) {
  DqnConfig config;
  config.batch_size = 8;
  DqnAgent original(4, codec_, config);
  NudgeAgent(original, codec_);
  ASSERT_GT(original.replay_size(), 0u);

  const AgentSerializeOptions with_replay{.include_optimizer = true,
                                          .include_replay = true};
  DqnAgent restored(4, codec_, config);
  restored.LoadJson(original.ToJson(with_replay));
  EXPECT_EQ(restored.replay_size(), original.replay_size());

  // Loading a replay-free document clears any memory the agent carried, so
  // a restore never mixes old experience with the checkpointed policy.
  restored.LoadJson(original.ToJson());
  EXPECT_EQ(restored.replay_size(), 0u);
}

TEST_F(AgentFixture, AgentLoadRejectsHostileDocumentsUnchanged) {
  DqnConfig config;
  config.batch_size = 8;
  config.seed = 47;
  DqnAgent agent(4, codec_, config);
  NudgeAgent(agent, codec_);
  const std::vector<double> probe = {0.2, 0.4, 0.6, 0.8};
  const std::vector<double> before_q = agent.QValues(probe);
  const double before_epsilon = agent.epsilon();
  const util::JsonValue good = agent.ToJson();

  util::JsonValue future = good;
  future.MutableObject()["format_version"] =
      util::JsonValue(std::int64_t{2});
  EXPECT_THROW(agent.LoadJson(future), util::JsonError);

  util::JsonValue wrong_width = good;
  wrong_width.MutableObject()["feature_width"] =
      util::JsonValue(std::int64_t{9});
  EXPECT_THROW(agent.LoadJson(wrong_width), util::JsonError);

  util::JsonValue epsilon_high = good;
  epsilon_high.MutableObject()["epsilon"] = util::JsonValue(1.5);
  EXPECT_THROW(agent.LoadJson(epsilon_high), util::JsonError);

  util::JsonValue epsilon_nan = good;
  epsilon_nan.MutableObject()["epsilon"] =
      util::JsonValue(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(agent.LoadJson(epsilon_nan), util::JsonError);

  util::JsonValue loss_nan = good;
  loss_nan.MutableObject()["last_loss"] =
      util::JsonValue(std::numeric_limits<double>::infinity());
  EXPECT_THROW(agent.LoadJson(loss_nan), util::JsonError);

  // A checkpoint from a differently-shaped home must be rejected before any
  // state is replaced.
  DqnAgent narrow(3, codec_, config);
  EXPECT_THROW(narrow.LoadJson(good), util::JsonError);

  // Every rejection above happened before the commit point: the live
  // policy and exploration schedule are untouched.
  EXPECT_EQ(agent.QValues(probe), before_q);
  EXPECT_DOUBLE_EQ(agent.epsilon(), before_epsilon);

  // And the good document still loads after all those rejections.
  EXPECT_NO_THROW(agent.LoadJson(good));
  EXPECT_EQ(agent.QValues(probe), before_q);
}

TEST_F(AgentFixture, TabularAgentLearnsContextualBandits) {
  TabularConfig config;
  config.epsilon = 0.0;
  TabularQAgent agent(home_, config);
  const fsm::StateVector state = {0, 0, 0, 2, 2};
  fsm::ActionVector good(home_.device_count(), fsm::kNoAction);
  good[2] = 1;
  fsm::ActionVector bad(home_.device_count(), fsm::kNoAction);
  bad[2] = 0;
  const auto mask = AllOn();
  for (int i = 0; i < 100; ++i) {
    agent.Update(state, 600, good, 1.0, state, 601, mask, true);
    agent.Update(state, 600, bad, -1.0, state, 601, mask, true);
  }
  EXPECT_GT(agent.QValue(state, 600, {2, 1}), 0.9);
  EXPECT_LT(agent.QValue(state, 600, {2, 0}), -0.9);
  const auto action = agent.SelectAction(state, 600, mask, true);
  EXPECT_EQ(action[2], 1);
  EXPECT_GT(agent.table_size(), 0u);
}

TEST_F(AgentFixture, TabularEpsilonDecay) {
  TabularConfig config;
  config.epsilon = 1.0;
  config.epsilon_decay = 0.5;
  config.epsilon_min = 0.3;
  TabularQAgent agent(home_, config);
  agent.DecayEpsilon();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.5);
  agent.DecayEpsilon();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.3);
  agent.DecayEpsilon();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.3);
}

TEST(TrainerIntegration, ImprovesOverRandomPolicyAndKeepsBestSnapshot) {
  sim::TestbedConfig testbed_config;
  testbed_config.benign_anomaly_samples = 1500;
  sim::Testbed testbed(testbed_config);
  spl::SafetyPolicyLearner learner(testbed.home_a(), spl::SplConfig{});
  learner.Learn(testbed.HomeALearningEpisodes(), testbed.BuildTrainingSet());
  const sim::DayTrace natural = testbed.home_b_data().Day(10);

  IoTEnvConfig env_config;
  env_config.decision_interval_minutes = 15;
  IoTEnv env(testbed.home_a(), natural, sim::ThermalConfig{}, &learner,
             env_config);
  DqnConfig dqn_config;
  dqn_config.seed = 11;
  DqnAgent agent(env.feature_width(), testbed.home_a().codec(), dqn_config);

  TrainerConfig trainer_config;
  trainer_config.episodes = 10;
  const TrainResult result = Train(env, agent, trainer_config);
  ASSERT_EQ(result.episode_rewards.size(), 10u);
  // Constrained training must commit zero violations.
  EXPECT_EQ(result.training_violations, 0u);
  EXPECT_EQ(result.greedy_violations, 0u);
  // The restored best policy is at least as good as the mean training
  // episode (it was selected greedily).
  double mean = 0.0;
  for (double r : result.episode_rewards) mean += r;
  mean /= static_cast<double>(result.episode_rewards.size());
  EXPECT_GE(result.greedy_reward, mean - 50.0);
  EXPECT_TRUE(result.greedy_episode.IsComplete());
}

}  // namespace
}  // namespace jarvis::rl
