// Cross-module property tests, parameterized over seeds and days:
//  * log round-trip: resident events -> JSON log -> parser reproduces the
//    exact trigger/action behavior of the recorded episode;
//  * P_safe soundness: with the ANN filter off and Thresh_env = 0, every
//    observed transition is admitted and randomly drawn unobserved
//    action/day-part combinations are not;
//  * determinism: the full learning phase is a pure function of the seed.
#include <gtest/gtest.h>

#include "events/logger_app.h"
#include "events/parser.h"
#include "fsm/device_library.h"
#include "sim/resident.h"
#include "spl/learner.h"
#include "util/rng.h"

namespace jarvis {
namespace {

struct Params {
  std::uint64_t seed;
  int day;
};

class PipelineProperty : public ::testing::TestWithParam<Params> {
 protected:
  PipelineProperty() : home_(fsm::BuildFullHome()) {}

  sim::DayTrace Simulate() const {
    sim::ResidentSimulator resident(home_, sim::ThermalConfig{},
                                    GetParam().seed);
    const sim::ScenarioGenerator generator({}, {}, {}, GetParam().seed ^ 0xabc);
    return resident.SimulateDay(generator.Generate(GetParam().day),
                                resident.OvernightState(), 21.0);
  }

  fsm::EnvironmentFsm home_;
};

TEST_P(PipelineProperty, LogRoundTripPreservesTriggerActions) {
  const sim::DayTrace trace = Simulate();

  // Serialize to the on-disk format and back.
  std::string log;
  for (const auto& event : trace.events) {
    log += event.ToLogLine();
    log.push_back('\n');
  }
  std::size_t dropped = 99;
  const auto events = events::LoggerApp::ParseLog(log, &dropped);
  ASSERT_EQ(dropped, 0u);
  ASSERT_EQ(events.size(), trace.events.size());

  events::LogParser parser(home_, {util::kMinutesPerDay, 1});
  const auto episodes = parser.Parse(
      events, trace.episode.initial_state(),
      util::SimTime::FromDayAndMinute(GetParam().day, 0), true);
  ASSERT_GE(episodes.size(), 1u);

  const auto original = fsm::ExtractTriggerActions({trace.episode});
  const auto parsed = fsm::ExtractTriggerActions(episodes);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].action, original[i].action);
    EXPECT_EQ(parsed[i].trigger_state, original[i].trigger_state);
    EXPECT_EQ(parsed[i].minute_of_day, original[i].minute_of_day);
  }
  EXPECT_EQ(parser.stats().unknown_device, 0u);
  EXPECT_EQ(parser.stats().unknown_state, 0u);
  EXPECT_EQ(parser.stats().unknown_command, 0u);
}

TEST_P(PipelineProperty, SafeTableSoundAndComplete) {
  const sim::DayTrace trace = Simulate();
  spl::SafeTransitionTable table(home_, spl::KeyMode::kFactoredContext, 0);
  const auto observations = fsm::ExtractTriggerActions({trace.episode});
  ASSERT_FALSE(observations.empty());
  for (const auto& ta : observations) {
    table.Observe(ta.trigger_state, ta.action, ta.minute_of_day);
  }
  table.Finalize();

  // Completeness: every observed transition is admitted.
  for (const auto& ta : observations) {
    EXPECT_TRUE(table.IsSafe(ta.trigger_state, ta.action, ta.minute_of_day));
  }

  // Soundness: random (action, opposite day-part) combinations that were
  // never observed are not admitted.
  util::Rng rng(GetParam().seed ^ 0xfeed);
  int rejected = 0, trials = 0;
  for (int i = 0; i < 200; ++i) {
    const auto& anchor =
        observations[rng.NextIndex(observations.size())];
    const auto device = rng.NextIndex(home_.device_count());
    const auto& dev = home_.devices()[device];
    const auto action_index = static_cast<fsm::ActionIndex>(
        rng.NextIndex(static_cast<std::size_t>(dev.action_count())));
    const int minute =
        (anchor.minute_of_day + 12 * 60) % util::kMinutesPerDay;
    // Skip combos that match something actually observed in this day-part.
    bool seen = false;
    for (const auto& ta : observations) {
      if (ta.minute_of_day / spl::kTimeBucketMinutes ==
              minute / spl::kTimeBucketMinutes &&
          ta.action[device] == action_index) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    ++trials;
    if (!table.IsMiniActionSafe(anchor.trigger_state,
                                {static_cast<fsm::DeviceId>(device),
                                 action_index},
                                minute)) {
      ++rejected;
    }
  }
  ASSERT_GT(trials, 50);
  // Factored keys may coincidentally admit a few (same context bucket seen
  // with that action); soundness requires the overwhelming majority to be
  // rejected.
  EXPECT_GT(static_cast<double>(rejected) / trials, 0.9);
}

TEST_P(PipelineProperty, SimulationIsDeterministicPerSeed) {
  const sim::DayTrace a = Simulate();
  const sim::DayTrace b = Simulate();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
  EXPECT_EQ(a.metrics.energy_kwh, b.metrics.energy_kwh);
  EXPECT_EQ(a.metrics.cost_usd, b.metrics.cost_usd);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDays, PipelineProperty,
    ::testing::Values(Params{1, 0}, Params{1, 5}, Params{2, 42},
                      Params{3, 100}, Params{4, 200}, Params{5, 300},
                      Params{6, 364}, Params{7, 183}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "seed" + std::to_string(info.param.seed) + "day" +
             std::to_string(info.param.day);
    });

}  // namespace
}  // namespace jarvis
