#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace jarvis::runtime {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(pool.tasks_executed(), 200u);
  EXPECT_EQ(pool.tasks_failed(), 0u);
}

TEST(ThreadPool, TrySubmitRejectsAtCapacityWithoutBlocking) {
  // One worker parked on a gate + a one-slot queue: admission state is
  // fully deterministic, so TrySubmit's accept/reject answers are exact.
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  ASSERT_TRUE(pool.Submit([&started, gate] {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();  // the worker has DEQUEUED the parked task

  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.TrySubmit([&ran] { ++ran; }));   // fills the only slot
  EXPECT_FALSE(pool.TrySubmit([&ran] { ++ran; }));  // at capacity: reject
  EXPECT_FALSE(pool.TrySubmit([&ran] { ++ran; }));  // still full, still no wait

  release.set_value();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);  // only the admitted task ever ran
  // With the queue empty again, admission resumes.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, TrySubmitRefusesNullAndShutDown) {
  ThreadPool pool(1, 4);
  EXPECT_FALSE(pool.TrySubmit(std::function<void()>()));
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

TEST(ThreadPool, BoundedQueueBackpressureStillRunsEverything) {
  // A tiny queue forces Submit to block on backpressure; every task must
  // still execute exactly once.
  ThreadPool pool(2, /*queue_capacity=*/2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, CapturesTaskExceptionsAndSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ok{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([] { throw std::runtime_error("tenant exploded"); });
    pool.Submit([&ok] { ++ok; });
  }
  pool.WaitIdle();
  EXPECT_EQ(ok.load(), 10);
  EXPECT_EQ(pool.tasks_failed(), 10u);
  EXPECT_EQ(pool.tasks_executed(), 20u);
  EXPECT_EQ(pool.first_error(), "tenant exploded");
  // The pool still accepts and runs work after failures.
  pool.Submit([&ok] { ++ok; });
  pool.WaitIdle();
  EXPECT_EQ(ok.load(), 11);
}

TEST(ThreadPool, CapturesNonStdExceptions) {
  ThreadPool pool(1);
  pool.Submit([] { throw 42; });  // NOLINT(hicpp-exception-baseclass)
  pool.WaitIdle();
  EXPECT_EQ(pool.tasks_failed(), 1u);
  EXPECT_EQ(pool.first_error(), "unknown exception");
}

TEST(ThreadPool, ShutdownDrainsQueueThenRejects) {
  ThreadPool pool(1, 64);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 32);  // graceful: queued work ran to completion
  EXPECT_FALSE(pool.Submit([&counter] { ++counter; }));
  EXPECT_EQ(counter.load(), 32);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPool, DestructorJoinsWithoutLosingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3, 8);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool: drain + join; no detached threads survive this scope
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ConcurrentProducers) {
  ThreadPool pool(4, 16);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&counter] { ++counter; });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ConcurrentShutdownJoinsEveryWorkerExactlyOnce) {
  // Regression: a Shutdown racing the destructor (or another Shutdown)
  // used to double-join the same std::thread. Now exactly one caller swaps
  // the workers out and joins; the others block on shutdown_done_, so the
  // drained-queue postcondition holds for all of them.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  std::vector<std::thread> closers;
  for (int t = 0; t < 4; ++t) {
    closers.emplace_back([&pool] { pool.Shutdown(); });
  }
  for (auto& closer : closers) closer.join();
  EXPECT_EQ(counter.load(), 100);  // every queued task ran before return
  EXPECT_FALSE(pool.Submit([] {}));
  pool.Shutdown();  // idempotent after the race; destructor makes it 6 calls
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&mutex, &ids] {
      std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.WaitIdle();
  EXPECT_FALSE(ids.count(std::this_thread::get_id()));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

}  // namespace
}  // namespace jarvis::runtime
