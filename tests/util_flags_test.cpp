#include "util/flags.h"

#include <gtest/gtest.h>

namespace jarvis::util {
namespace {

Flags Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags flags = Make({"--name=value", "--count=7", "--rate=0.5"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
}

TEST(Flags, SpaceForm) {
  const Flags flags = Make({"--log", "events.txt", "--days", "14"});
  EXPECT_EQ(flags.GetString("log", ""), "events.txt");
  EXPECT_EQ(flags.GetInt("days", 0), 14);
}

TEST(Flags, BareBooleans) {
  const Flags flags = Make({"--verbose", "--force=false", "--dry", "--x=1"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("force", true));
  EXPECT_TRUE(flags.GetBool("dry", false));
  EXPECT_TRUE(flags.GetBool("x", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(Flags, PositionalArguments) {
  const Flags flags = Make({"learn", "--log=x", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "learn");
  EXPECT_EQ(flags.positional()[1], "extra");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags flags = Make({});
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Flags, TypeErrorsThrow) {
  const Flags flags = Make({"--n=abc", "--d=1.2.3", "--b=maybe"});
  EXPECT_THROW(flags.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.GetDouble("d", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.GetBool("b", false), std::invalid_argument);
}

TEST(Flags, MalformedFlagThrows) {
  EXPECT_THROW(Make({"--=x"}), std::invalid_argument);
  EXPECT_THROW(Make({"--"}), std::invalid_argument);
}

TEST(Flags, SpaceFormDoesNotEatNextFlag) {
  const Flags flags = Make({"--a", "--b=2"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_EQ(flags.GetInt("b", 0), 2);
}

TEST(Flags, LastValueWins) {
  const Flags flags = Make({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace jarvis::util
