#include "fsm/state.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <set>

#include "fsm/device_library.h"
#include "util/rng.h"

namespace jarvis::fsm {
namespace {

class CodecSuite : public ::testing::TestWithParam<std::vector<Device>> {
 protected:
  StateCodec MakeCodec() const { return StateCodec(GetParam()); }
};

TEST_P(CodecSuite, EncodeDecodeRoundTripsRandomStates) {
  const auto& devices = GetParam();
  const StateCodec codec(devices);
  util::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    StateVector state(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
      state[i] = static_cast<StateIndex>(
          rng.NextIndex(static_cast<std::size_t>(devices[i].state_count())));
    }
    EXPECT_EQ(codec.Decode(codec.Encode(state)), state);
  }
}

TEST_P(CodecSuite, EncodingIsInjectiveOnSamples) {
  const auto& devices = GetParam();
  const StateCodec codec(devices);
  util::Rng rng(8);
  std::set<std::uint64_t> keys;
  std::set<StateVector> states;
  for (int trial = 0; trial < 300; ++trial) {
    StateVector state(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
      state[i] = static_cast<StateIndex>(
          rng.NextIndex(static_cast<std::size_t>(devices[i].state_count())));
    }
    states.insert(state);
    keys.insert(codec.Encode(state));
  }
  EXPECT_EQ(states.size(), keys.size());
}

TEST_P(CodecSuite, MiniActionSlotsRoundTrip) {
  const auto& devices = GetParam();
  const StateCodec codec(devices);
  std::set<std::size_t> seen;
  for (const auto& device : devices) {
    for (ActionIndex a = 0; a < device.action_count(); ++a) {
      const MiniAction mini{device.id(), a};
      const std::size_t slot = codec.MiniActionSlot(mini);
      EXPECT_TRUE(seen.insert(slot).second) << "slot collision";
      EXPECT_EQ(codec.SlotToMiniAction(slot), mini);
    }
    const std::size_t noop = codec.NoOpSlot(device.id());
    EXPECT_TRUE(seen.insert(noop).second);
    const MiniAction decoded = codec.SlotToMiniAction(noop);
    EXPECT_EQ(decoded.device, device.id());
    EXPECT_EQ(decoded.action, kNoAction);
  }
  EXPECT_EQ(seen.size(), codec.mini_action_count());
}

TEST_P(CodecSuite, OneHotHasExactlyOneBitPerDevice) {
  const auto& devices = GetParam();
  const StateCodec codec(devices);
  StateVector state(devices.size(), 0);
  const auto features = codec.OneHot(state);
  EXPECT_EQ(features.size(), codec.one_hot_width());
  double total = 0.0;
  for (double f : features) {
    EXPECT_TRUE(f == 0.0 || f == 1.0);
    total += f;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(devices.size()));
}

INSTANTIATE_TEST_SUITE_P(Homes, CodecSuite,
                         ::testing::Values(ExampleHomeDevices(),
                                           FullHomeDevices()));

TEST(StateCodec, StateSpaceSizeMatchesProduct) {
  const StateCodec codec(ExampleHomeDevices());
  // lock 4 * door 4 * light 2 * thermostat 3 * temp 5 = 480
  EXPECT_EQ(codec.state_space_size(), 480u);
}

TEST(StateCodec, EncodeValidatesInput) {
  const StateCodec codec(ExampleHomeDevices());
  EXPECT_THROW(codec.Encode({0, 0}), util::CheckError);
  EXPECT_THROW(codec.Encode({9, 0, 0, 0, 0}), util::CheckError);
  EXPECT_THROW(codec.OneHot({0, 0, 0, 0, -1}), util::CheckError);
}

TEST(StateCodec, ActionSlotsConversions) {
  const auto devices = ExampleHomeDevices();
  const StateCodec codec(devices);
  ActionVector action(devices.size(), kNoAction);
  action[2] = 1;  // light power_on
  action[3] = 2;  // thermostat power_off
  const auto slots = codec.ActionToSlots(action);
  EXPECT_EQ(slots.size(), devices.size());
  EXPECT_EQ(codec.SlotsToAction(slots), action);
}

TEST(StateCodec, SlotLayoutIsContiguousPerDevice) {
  const auto devices = FullHomeDevices();
  const StateCodec codec(devices);
  std::size_t expected = 0;
  for (const auto& device : devices) {
    for (ActionIndex a = 0; a < device.action_count(); ++a) {
      EXPECT_EQ(codec.MiniActionSlot({device.id(), a}), expected++);
    }
    EXPECT_EQ(codec.NoOpSlot(device.id()), expected++);
  }
  EXPECT_EQ(expected, codec.mini_action_count());
}

TEST(StateCodec, MiniActionSpaceGrowsLinearly) {
  // Section V-A-7: the mini-action head grows linearly in devices while
  // the joint action space grows exponentially.
  const StateCodec small(ExampleHomeDevices());
  const StateCodec big(FullHomeDevices());
  EXPECT_EQ(small.mini_action_count(), 19u);  // (4+2+2+4+2) + 5 no-ops
  EXPECT_EQ(big.mini_action_count(), 49u);
  EXPECT_GT(big.state_space_size(), 100000u);
}

TEST(TransitionKeyHash, DistinguishesDirection) {
  const TransitionKeyHash hash;
  const TransitionKey ab{1, 2};
  const TransitionKey ba{2, 1};
  EXPECT_NE(hash(ab), hash(ba));
  EXPECT_TRUE((TransitionKey{1, 2} == TransitionKey{1, 2}));
  EXPECT_FALSE((TransitionKey{1, 2} == ba));
}

TEST(StateCodec, StringRendering) {
  const auto devices = ExampleHomeDevices();
  const StateCodec codec(devices);
  const StateVector state = {0, 0, 1, 2, 2};
  const std::string rendered = codec.StateToString(devices, state);
  EXPECT_NE(rendered.find("locked_outside"), std::string::npos);
  EXPECT_NE(rendered.find("on"), std::string::npos);
  ActionVector action(devices.size(), kNoAction);
  action[0] = 1;
  const std::string action_text = codec.ActionToString(devices, action);
  EXPECT_NE(action_text.find("unlock"), std::string::npos);
  EXPECT_NE(action_text.find("O"), std::string::npos);
}

}  // namespace
}  // namespace jarvis::fsm
