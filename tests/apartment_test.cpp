// Context-independence check (the paper's claim 1): the pipeline must run
// unchanged on a differently-composed home. We assemble a 7-device
// apartment (no oven, washer, dishwasher, or coffee maker), run the full
// learning phase on it, and verify detection and optimization still work.
#include <gtest/gtest.h>

#include "core/jarvis.h"
#include "fsm/device_library.h"
#include "sim/anomaly.h"
#include "sim/resident.h"
#include "spl/learner.h"

namespace jarvis {
namespace {

fsm::EnvironmentFsm BuildApartment() {
  std::vector<fsm::Device> devices;
  devices.push_back(fsm::MakeSmartLock(0));
  devices.push_back(fsm::MakeDoorSensor(1));
  devices.push_back(fsm::MakeSmartLight(2));
  devices.push_back(fsm::MakeThermostat(3));
  devices.push_back(fsm::MakeTempSensor(4));
  devices.push_back(fsm::MakeFridge(5));
  devices.push_back(fsm::MakeTelevision(6));
  // Note: MakeTelevision was authored with id 7 in the full home; rebuild
  // it with the right id for this layout.
  devices[6] = fsm::MakeTelevision(6);
  return fsm::BuildHome(std::move(devices), /*user_count=*/1);
}

class ApartmentFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    home_ = new fsm::EnvironmentFsm(BuildApartment());
    resident_ = new sim::ResidentSimulator(*home_, sim::ThermalConfig{}, 12);

    // Learning phase: spread days, like the testbed.
    const sim::ScenarioGenerator generator({}, {}, {}, 13);
    std::vector<fsm::Episode> episodes;
    for (int i = 0; i < 10; ++i) {
      episodes.push_back(resident_
                             ->SimulateDay(generator.Generate(i * 36),
                                           resident_->OvernightState(), 21.0)
                             .episode);
    }
    sim::AnomalyGenerator anomalies(*home_, 14);
    const auto labeled = anomalies.BuildTrainingSet(
        fsm::ExtractTriggerActions(episodes), 2000);

    learner_ = new spl::SafetyPolicyLearner(*home_, spl::SplConfig{});
    learner_->Learn(episodes, labeled);
  }
  static void TearDownTestSuite() {
    delete learner_;
    delete resident_;
    delete home_;
    learner_ = nullptr;
    resident_ = nullptr;
    home_ = nullptr;
  }

  static fsm::EnvironmentFsm* home_;
  static sim::ResidentSimulator* resident_;
  static spl::SafetyPolicyLearner* learner_;
};

fsm::EnvironmentFsm* ApartmentFixture::home_ = nullptr;
sim::ResidentSimulator* ApartmentFixture::resident_ = nullptr;
spl::SafetyPolicyLearner* ApartmentFixture::learner_ = nullptr;

TEST_F(ApartmentFixture, LearningPhasePopulatesWhitelist) {
  EXPECT_TRUE(learner_->learned());
  EXPECT_GT(learner_->table().admitted_key_count(), 10u);
}

TEST_F(ApartmentFixture, SensorDisableStillDetected) {
  fsm::StateVector state(home_->device_count(), 0);
  const fsm::MiniAction disable{
      4, *home_->device(4).FindAction("power_off")};
  EXPECT_EQ(learner_->ClassifyMini(state, disable, 12 * 60),
            spl::Verdict::kViolation);
  const fsm::MiniAction night_unlock{
      0, *home_->device(0).FindAction("unlock")};
  EXPECT_EQ(learner_->ClassifyMini(state, night_unlock, 2 * 60),
            spl::Verdict::kViolation);
}

TEST_F(ApartmentFixture, FreshBenignDayAuditsClean) {
  const sim::ScenarioGenerator generator({}, {}, {}, 13);
  const auto trace = resident_->SimulateDay(generator.Generate(123),
                                            resident_->OvernightState(), 21.0);
  const auto audit = learner_->AuditEpisode(trace.episode);
  EXPECT_GT(audit.transitions_checked, 5u);
  EXPECT_LE(audit.violations, audit.transitions_checked / 10);
}

TEST_F(ApartmentFixture, OptimizationRunsOnSubsetHome) {
  core::JarvisConfig config;
  config.trainer.episodes = 6;
  config.restarts = 1;
  core::Jarvis jarvis(*home_, config);
  const sim::ScenarioGenerator generator({}, {}, {}, 13);
  std::vector<fsm::Episode> episodes;
  for (int i = 0; i < 6; ++i) {
    episodes.push_back(resident_
                           ->SimulateDay(generator.Generate(i * 60),
                                         resident_->OvernightState(), 21.0)
                           .episode);
  }
  sim::AnomalyGenerator anomalies(*home_, 15);
  jarvis.LearnPolicies(episodes,
                       anomalies.BuildTrainingSet(
                           fsm::ExtractTriggerActions(episodes), 1000));

  const auto day = resident_->SimulateDay(generator.Generate(250),
                                          resident_->OvernightState(), 21.0);
  const auto plan = jarvis.OptimizeDay(day, rl::RewardWeights{});
  EXPECT_EQ(plan.violations, 0u);
  EXPECT_GT(plan.optimized_metrics.energy_kwh, 0.0);
  EXPECT_TRUE(plan.train.greedy_episode.IsComplete());
}

TEST_F(ApartmentFixture, AnomalyGeneratorAdaptsToDeviceSubset) {
  sim::AnomalyGenerator anomalies(*home_, 16);
  const auto kinds = anomalies.SupportedKinds();
  std::set<sim::AnomalyKind> set(kinds.begin(), kinds.end());
  EXPECT_TRUE(set.count(sim::AnomalyKind::kFridgeDoorLeftOpen));
  EXPECT_TRUE(set.count(sim::AnomalyKind::kTvLeftOnShort));
  EXPECT_FALSE(set.count(sim::AnomalyKind::kOvenLeftOnShort));
}

}  // namespace
}  // namespace jarvis
