// Concurrency stress for the event path (label `runtime`, so CI runs this
// under TSan): EventBus publish-while-subscribe churn, the re-entrant
// Publish backstop, and FaultyBus racing publishers. The assertions are
// about invariants that must hold under any interleaving — exact delivery
// interleavings are scheduler-dependent and deliberately not pinned.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "events/bus.h"
#include "events/event.h"
#include "faults/injector.h"
#include "faults/schedule.h"
#include "util/check.h"
#include "util/timeofday.h"

namespace jarvis::events {
namespace {

Event MakeEvent(util::SimTime t, const std::string& device,
                const std::string& value) {
  Event event;
  event.date = t;
  event.device_label = device;
  event.capability = "switch";
  event.attribute = "switch";
  event.attribute_value = value;
  return event;
}

TEST(EventBusStress, PublishWhileSubscribeUnsubscribeChurn) {
  EventBus bus;
  std::atomic<std::size_t> delivered{0};
  std::atomic<bool> stop{false};

  // One durable wildcard subscriber so every publication lands somewhere.
  bus.Subscribe("", "", [&delivered](const Event&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&bus, p] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        bus.Publish(MakeEvent(util::SimTime{static_cast<std::int64_t>(i)},
                              "lamp" + std::to_string(p), "on"));
      }
    });
  }
  // Churn thread: subscribe/unsubscribe in a tight loop while publishers
  // run. Its callbacks may or may not see any given publication; the point
  // is that the bus never crashes, deadlocks, or races.
  threads.emplace_back([&bus, &stop] {
    while (!stop.load()) {
      const SubscriptionId id = bus.Subscribe("lamp0", "", [](const Event&) {});
      bus.Unsubscribe(id);
    }
  });
  for (std::size_t p = 0; p < kPublishers; ++p) threads[p].join();
  stop.store(true);
  threads.back().join();

  EXPECT_EQ(delivered.load(), kPublishers * kPerThread);
  EXPECT_EQ(bus.published_count(), kPublishers * kPerThread);
}

TEST(EventBusStress, CallbackMaySubscribeAndUnsubscribeUnderConcurrentPublish) {
  EventBus bus;
  // A subscriber that itself subscribes and unsubscribes during delivery —
  // the allowed half of the re-entrancy contract — while two publishers
  // race against it from other threads.
  std::atomic<std::size_t> calls{0};
  bus.Subscribe("", "", [&bus, &calls](const Event&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    const SubscriptionId transient =
        bus.Subscribe("nobody", "", [](const Event&) {});
    bus.Unsubscribe(transient);
  });
  std::thread publisher_a([&bus] {
    for (int i = 0; i < 500; ++i) {
      bus.Publish(MakeEvent(util::SimTime{0}, "a", "on"));
    }
  });
  std::thread publisher_b([&bus] {
    for (int i = 0; i < 500; ++i) {
      bus.Publish(MakeEvent(util::SimTime{0}, "b", "on"));
    }
  });
  publisher_a.join();
  publisher_b.join();
  EXPECT_EQ(calls.load(), 1000u);
  EXPECT_EQ(bus.subscription_count(), 1u);  // every transient reaped
}

TEST(EventBusStress, ReentrantPublishIsADeterministicCheckError) {
  EventBus bus;
  bus.Subscribe("", "", [&bus](const Event& event) {
    bus.Publish(event);  // forbidden: same-thread nested Publish
  });
  EXPECT_THROW(bus.Publish(MakeEvent(util::SimTime{0}, "lamp", "on")),
               util::CheckError);
}

TEST(FaultyBusStress, RacingPublishersEveryAcceptedEventAccountedFor) {
  EventBus inner;
  std::atomic<std::size_t> delivered{0};
  inner.Subscribe("", "", [&delivered](const Event&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  // Lossy + duplicating + delaying schedule: the interesting regime, since
  // all three touch the shared RNG/counters/pending state.
  faults::FaultSchedule schedule;
  schedule.seed = 7;
  faults::FaultSpec drop;
  drop.kind = faults::FaultKind::kDrop;
  drop.rate = 0.2;
  faults::FaultSpec dup;
  dup.kind = faults::FaultKind::kDuplicate;
  dup.rate = 0.2;
  faults::FaultSpec delay;
  delay.kind = faults::FaultKind::kDelay;
  delay.rate = 0.2;
  delay.delay_minutes = 10;
  schedule.specs = {drop, dup, delay};
  faults::FaultyBus bus(inner, schedule);

  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kPerThread = 500;
  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&bus, &accepted, p] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if (bus.Publish(MakeEvent(util::SimTime{static_cast<std::int64_t>(i)},
                                  "dev" + std::to_string(p), "on"))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  bus.FlushAll();

  // Conservation law, independent of interleaving: every published event
  // was either dropped or delivered (plus the duplicate/flap extras).
  const faults::FaultCounters counters = bus.counters();
  const std::size_t published = kPublishers * kPerThread;
  EXPECT_EQ(delivered.load(),
            published - counters.dropped - counters.offline_drops -
                counters.publish_failures + counters.duplicated +
                counters.flap_reports);
  EXPECT_EQ(accepted.load(), published - counters.publish_failures);
  EXPECT_EQ(bus.pending_delayed(), 0u);
}

TEST(FaultyBusStress, ConcurrentFlushAndPublishKeepPendingConsistent) {
  EventBus inner;
  std::atomic<std::size_t> delivered{0};
  inner.Subscribe("", "", [&delivered](const Event&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  faults::FaultSchedule schedule;
  schedule.seed = 11;
  faults::FaultSpec delay;
  delay.kind = faults::FaultKind::kDelay;
  delay.rate = 0.5;
  delay.delay_minutes = 3;
  schedule.specs = {delay};
  faults::FaultyBus bus(inner, schedule);

  std::atomic<bool> stop{false};
  std::thread flusher([&bus, &stop] {
    std::int64_t now = 0;
    while (!stop.load()) {
      bus.Flush(util::SimTime{now});
      now += 2;
    }
  });
  constexpr std::size_t kEvents = 1000;
  std::thread publisher([&bus] {
    for (std::size_t i = 0; i < kEvents; ++i) {
      bus.Publish(MakeEvent(util::SimTime{static_cast<std::int64_t>(i)},
                            "sensor", std::to_string(i)));
    }
  });
  publisher.join();
  stop.store(true);
  flusher.join();
  bus.FlushAll();

  EXPECT_EQ(delivered.load(), kEvents);  // delayed, never lost
  EXPECT_EQ(bus.pending_delayed(), 0u);
  EXPECT_EQ(bus.counters().delayed, bus.counters().total());
}

}  // namespace
}  // namespace jarvis::events
