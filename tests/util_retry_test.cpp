#include "util/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace jarvis::util {
namespace {

TEST(BackoffMs, DeterministicExponentialSequence) {
  const RetryPolicy policy{.max_attempts = 6,
                           .base_backoff_ms = 10,
                           .backoff_factor = 2.0,
                           .max_backoff_ms = 10000};
  EXPECT_EQ(BackoffMs(policy, 1), 0);
  EXPECT_EQ(BackoffMs(policy, 2), 10);
  EXPECT_EQ(BackoffMs(policy, 3), 20);
  EXPECT_EQ(BackoffMs(policy, 4), 40);
  EXPECT_EQ(BackoffMs(policy, 5), 80);
}

TEST(BackoffMs, CappedAtCeiling) {
  const RetryPolicy policy{.max_attempts = 20,
                           .base_backoff_ms = 10,
                           .backoff_factor = 10.0,
                           .max_backoff_ms = 500};
  EXPECT_EQ(BackoffMs(policy, 2), 10);
  EXPECT_EQ(BackoffMs(policy, 3), 100);
  EXPECT_EQ(BackoffMs(policy, 4), 500);
  EXPECT_EQ(BackoffMs(policy, 10), 500);
}

TEST(Retry, FirstAttemptSuccessSleepsNever) {
  bool slept = false;
  const auto result = Retry(
      RetryPolicy{}, [] { return true; }, [&](int) { slept = true; });
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.total_backoff_ms, 0);
  EXPECT_FALSE(slept);
}

TEST(Retry, RecordsBackoffSequenceUntilSuccess) {
  std::vector<int> delays;
  int calls = 0;
  const auto result = Retry(
      RetryPolicy{.max_attempts = 5}, [&] { return ++calls == 3; },
      [&](int delay_ms) { delays.push_back(delay_ms); });
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(delays, (std::vector<int>{10, 20}));
  EXPECT_EQ(result.total_backoff_ms, 30);
}

TEST(Retry, ExhaustsBudgetAndReportsFailure) {
  int calls = 0;
  const auto result = Retry(RetryPolicy{.max_attempts = 4}, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(result.attempts, 4);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(result.total_backoff_ms, 10 + 20 + 40);
}

TEST(Retry, NonPositiveBudgetClampsToOneAttempt) {
  int calls = 0;
  const auto result = Retry(RetryPolicy{.max_attempts = 0}, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, NullSleepSkipsSleepingButStillCountsBackoff) {
  const auto result =
      Retry(RetryPolicy{.max_attempts = 3}, [] { return false; }, nullptr);
  EXPECT_EQ(result.total_backoff_ms, 10 + 20);
}

TEST(BackoffMsJittered, StaysWithinJitterBand) {
  RetryPolicy policy{.max_attempts = 10,
                     .base_backoff_ms = 100,
                     .backoff_factor = 2.0,
                     .max_backoff_ms = 100000};
  policy.jitter_fraction = 0.5;
  Rng rng(42);
  for (int attempt = 2; attempt <= 10; ++attempt) {
    const int exact = BackoffMs(policy, attempt);
    const int jittered = BackoffMsJittered(policy, attempt, rng);
    // A draw from [1 - fraction, 1] scales the exact delay down, never up.
    EXPECT_GE(jittered, static_cast<int>(exact * 0.5) - 1) << attempt;
    EXPECT_LE(jittered, exact) << attempt;
  }
}

TEST(BackoffMsJittered, SameSeedSameSequence) {
  RetryPolicy policy{};
  policy.max_attempts = 8;
  policy.jitter_fraction = 0.3;

  const auto sequence = [&policy](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<int> delays;
    for (int attempt = 2; attempt <= 8; ++attempt) {
      delays.push_back(BackoffMsJittered(policy, attempt, rng));
    }
    return delays;
  };
  EXPECT_EQ(sequence(7), sequence(7));  // bit-replayable
  EXPECT_NE(sequence(7), sequence(8));  // decorrelated across seeds
}

TEST(BackoffMsJittered, ZeroFractionPreservesExactSchedule) {
  const RetryPolicy policy{.max_attempts = 6,
                           .base_backoff_ms = 10,
                           .backoff_factor = 2.0,
                           .max_backoff_ms = 10000};
  Rng rng(5);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(BackoffMsJittered(policy, attempt, rng),
              BackoffMs(policy, attempt));
  }
}

TEST(Retry, JitteredRunIsAPureFunctionOfTheSeed) {
  RetryPolicy policy{.max_attempts = 5};
  policy.jitter_fraction = 0.4;
  policy.jitter_seed = 1234;

  const auto run = [&policy] {
    std::vector<int> delays;
    Retry(
        policy, [] { return false; },
        [&](int delay_ms) { delays.push_back(delay_ms); });
    return delays;
  };
  const std::vector<int> first = run();
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(first, run());  // the jitter stream reseeds per Retry call
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_LE(first[i], BackoffMs(policy, static_cast<int>(i) + 2));
  }
}

}  // namespace
}  // namespace jarvis::util
