#include "util/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace jarvis::util {
namespace {

TEST(BackoffMs, DeterministicExponentialSequence) {
  const RetryPolicy policy{.max_attempts = 6,
                           .base_backoff_ms = 10,
                           .backoff_factor = 2.0,
                           .max_backoff_ms = 10000};
  EXPECT_EQ(BackoffMs(policy, 1), 0);
  EXPECT_EQ(BackoffMs(policy, 2), 10);
  EXPECT_EQ(BackoffMs(policy, 3), 20);
  EXPECT_EQ(BackoffMs(policy, 4), 40);
  EXPECT_EQ(BackoffMs(policy, 5), 80);
}

TEST(BackoffMs, CappedAtCeiling) {
  const RetryPolicy policy{.max_attempts = 20,
                           .base_backoff_ms = 10,
                           .backoff_factor = 10.0,
                           .max_backoff_ms = 500};
  EXPECT_EQ(BackoffMs(policy, 2), 10);
  EXPECT_EQ(BackoffMs(policy, 3), 100);
  EXPECT_EQ(BackoffMs(policy, 4), 500);
  EXPECT_EQ(BackoffMs(policy, 10), 500);
}

TEST(Retry, FirstAttemptSuccessSleepsNever) {
  bool slept = false;
  const auto result = Retry(
      RetryPolicy{}, [] { return true; }, [&](int) { slept = true; });
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.total_backoff_ms, 0);
  EXPECT_FALSE(slept);
}

TEST(Retry, RecordsBackoffSequenceUntilSuccess) {
  std::vector<int> delays;
  int calls = 0;
  const auto result = Retry(
      RetryPolicy{.max_attempts = 5}, [&] { return ++calls == 3; },
      [&](int delay_ms) { delays.push_back(delay_ms); });
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(delays, (std::vector<int>{10, 20}));
  EXPECT_EQ(result.total_backoff_ms, 30);
}

TEST(Retry, ExhaustsBudgetAndReportsFailure) {
  int calls = 0;
  const auto result = Retry(RetryPolicy{.max_attempts = 4}, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(result.attempts, 4);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(result.total_backoff_ms, 10 + 20 + 40);
}

TEST(Retry, NonPositiveBudgetClampsToOneAttempt) {
  int calls = 0;
  const auto result = Retry(RetryPolicy{.max_attempts = 0}, [&] {
    ++calls;
    return false;
  });
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, NullSleepSkipsSleepingButStillCountsBackoff) {
  const auto result =
      Retry(RetryPolicy{.max_attempts = 3}, [] { return false; }, nullptr);
  EXPECT_EQ(result.total_backoff_ms, 10 + 20);
}

}  // namespace
}  // namespace jarvis::util
