#include "neural/network.h"

#include <gtest/gtest.h>

#include "neural/serialize.h"
#include "util/check.h"

namespace jarvis::neural {
namespace {

Tensor XorInputs() {
  return Tensor{{0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}, {1.0, 1.0}};
}
Tensor XorTargets() { return Tensor{{0.0}, {1.0}, {1.0}, {0.0}}; }

TEST(Network, LearnsXorWithSgd) {
  Network network(2, {{8, Activation::kTanh}, {1, Activation::kSigmoid}},
                  Loss::kBinaryCrossEntropy,
                  std::make_unique<Sgd>(0.5, 0.9), util::Rng(3));
  const Tensor inputs = XorInputs();
  const Tensor targets = XorTargets();
  double loss = 1e9;
  for (int epoch = 0; epoch < 2000; ++epoch) {
    loss = network.TrainBatch(inputs, targets);
  }
  EXPECT_LT(loss, 0.05);
  const Tensor out = network.Predict(inputs);
  EXPECT_LT(out(0, 0), 0.2);
  EXPECT_GT(out(1, 0), 0.8);
  EXPECT_GT(out(2, 0), 0.8);
  EXPECT_LT(out(3, 0), 0.2);
}

TEST(Network, LearnsXorWithAdam) {
  Network network(2, {{8, Activation::kRelu}, {1, Activation::kSigmoid}},
                  Loss::kBinaryCrossEntropy, std::make_unique<Adam>(0.02),
                  util::Rng(5));
  const Tensor inputs = XorInputs();
  const Tensor targets = XorTargets();
  double loss = 1e9;
  for (int epoch = 0; epoch < 1500; ++epoch) {
    loss = network.TrainBatch(inputs, targets);
  }
  EXPECT_LT(loss, 0.05);
}

TEST(Network, FitsLinearRegression) {
  // y = 2 x0 - 3 x1 + 1, learnable exactly by one identity layer.
  Network network(2, {{1, Activation::kIdentity}}, Loss::kMeanSquaredError,
                  std::make_unique<Adam>(0.05), util::Rng(11));
  util::Rng rng(13);
  Tensor inputs(64, 2);
  Tensor targets(64, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    const double x0 = rng.NextUniform(-1, 1);
    const double x1 = rng.NextUniform(-1, 1);
    inputs.SetRow(i, {x0, x1});
    targets.At(i, 0) = 2.0 * x0 - 3.0 * x1 + 1.0;
  }
  double loss = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    loss = network.TrainEpoch(inputs, targets, 16);
  }
  EXPECT_LT(loss, 1e-3);
  const auto& layer = network.layers()[0];
  EXPECT_NEAR(layer.weights()(0, 0), 2.0, 0.05);
  EXPECT_NEAR(layer.weights()(1, 0), -3.0, 0.05);
  EXPECT_NEAR(layer.biases()(0, 0), 1.0, 0.05);
}

TEST(Network, MaskedTrainingLeavesOtherHeadsUntouched) {
  Network network(2, {{4, Activation::kRelu}, {3, Activation::kIdentity}},
                  Loss::kMeanSquaredError, std::make_unique<Sgd>(0.1),
                  util::Rng(17));
  const Tensor input{{0.5, -0.5}};
  const Tensor before = network.Predict(input);
  // Train only output 1 toward a large value.
  Tensor target = before;
  target.At(0, 1) = 10.0;
  Tensor mask(1, 3, 0.0);
  mask.At(0, 1) = 1.0;
  for (int i = 0; i < 50; ++i) network.TrainBatchMasked(input, target, mask);
  const Tensor after = network.Predict(input);
  EXPECT_GT(after(0, 1), before(0, 1) + 1.0);
  // Heads 0 and 2 share the trunk so they may drift, but far less than the
  // trained head moved.
  EXPECT_LT(std::abs(after(0, 0) - before(0, 0)),
            (after(0, 1) - before(0, 1)) / 2.0);
}

TEST(Network, MaskedTrainingRequiresMse) {
  Network network(2, {{1, Activation::kSigmoid}}, Loss::kBinaryCrossEntropy,
                  std::make_unique<Sgd>(0.1), util::Rng(19));
  const Tensor input{{0.1, 0.2}};
  EXPECT_THROW(network.TrainBatchMasked(input, Tensor(1, 1), Tensor(1, 1)),
               std::logic_error);
}

TEST(Network, ConstructionValidation) {
  // Validation is enforced via JARVIS_CHECK: util::CheckError, which is a
  // std::logic_error so pre-existing generic handlers still catch it.
  EXPECT_THROW(Network(2, {}, Loss::kMeanSquaredError,
                       std::make_unique<Sgd>(0.1), util::Rng(1)),
               util::CheckError);
  EXPECT_THROW(Network(2, {{1, Activation::kIdentity}},
                       Loss::kMeanSquaredError, nullptr, util::Rng(1)),
               util::CheckError);
  EXPECT_THROW(Sgd(-0.1), util::CheckError);
  EXPECT_THROW(Sgd(0.1, 1.5), util::CheckError);
  EXPECT_THROW(Adam(0.0), util::CheckError);
}

TEST(Network, TrainEpochValidation) {
  Network network(2, {{1, Activation::kIdentity}}, Loss::kMeanSquaredError,
                  std::make_unique<Sgd>(0.1), util::Rng(29));
  const Tensor inputs{{0.1, 0.2}, {0.3, 0.4}};
  EXPECT_THROW(network.TrainEpoch(inputs, Tensor(1, 1), 1), util::CheckError);
  EXPECT_THROW(network.TrainEpoch(inputs, Tensor(2, 1), 0), util::CheckError);
  EXPECT_THROW(network.ImportParameters({}), util::CheckError);
  Network narrower(1, {{1, Activation::kIdentity}}, Loss::kMeanSquaredError,
                   std::make_unique<Sgd>(0.1), util::Rng(31));
  EXPECT_THROW(network.CopyParametersFrom(narrower), util::CheckError);
}

TEST(Network, ParameterCount) {
  Network network(3, {{5, Activation::kRelu}, {2, Activation::kIdentity}},
                  Loss::kMeanSquaredError, std::make_unique<Sgd>(0.1),
                  util::Rng(23));
  // (3*5 + 5) + (5*2 + 2) = 20 + 12
  EXPECT_EQ(network.parameter_count(), 32u);
  EXPECT_EQ(network.input_features(), 3u);
  EXPECT_EQ(network.output_features(), 2u);
}

TEST(Network, CopyParametersAlignsPredictions) {
  Network a(2, {{4, Activation::kTanh}, {1, Activation::kIdentity}},
            Loss::kMeanSquaredError, std::make_unique<Sgd>(0.1),
            util::Rng(29));
  Network b(2, {{4, Activation::kTanh}, {1, Activation::kIdentity}},
            Loss::kMeanSquaredError, std::make_unique<Sgd>(0.1),
            util::Rng(31));
  const Tensor input{{0.4, 0.6}};
  EXPECT_NE(a.Predict(input)(0, 0), b.Predict(input)(0, 0));
  b.CopyParametersFrom(a);
  EXPECT_DOUBLE_EQ(a.Predict(input)(0, 0), b.Predict(input)(0, 0));
}

TEST(Network, ExportImportRoundTrip) {
  Network a(2, {{3, Activation::kRelu}, {1, Activation::kIdentity}},
            Loss::kMeanSquaredError, std::make_unique<Adam>(0.01),
            util::Rng(37));
  const Tensor input{{1.0, -1.0}};
  const auto saved = a.ExportParameters();
  const double before = a.Predict(input)(0, 0);
  // Perturb by training, then restore.
  for (int i = 0; i < 20; ++i) a.TrainBatch(input, Tensor{{5.0}});
  EXPECT_NE(a.Predict(input)(0, 0), before);
  a.ImportParameters(saved);
  EXPECT_DOUBLE_EQ(a.Predict(input)(0, 0), before);
}

TEST(Network, JsonSerializationRoundTrip) {
  Network original(3, {{4, Activation::kSigmoid}, {2, Activation::kIdentity}},
                   Loss::kMeanSquaredError, std::make_unique<Adam>(0.01),
                   util::Rng(41));
  const std::string json = ToJsonString(original);
  Network restored = FromJsonString(json, Loss::kMeanSquaredError,
                                    std::make_unique<Adam>(0.01),
                                    util::Rng(99));
  const Tensor input{{0.2, 0.4, -0.6}};
  const Tensor a = original.Predict(input);
  const Tensor b = restored.Predict(input);
  ASSERT_TRUE(a.SameShape(b));
  for (std::size_t c = 0; c < a.cols(); ++c) {
    EXPECT_DOUBLE_EQ(a(0, c), b(0, c));
  }
  EXPECT_EQ(restored.input_features(), 3u);
  EXPECT_EQ(restored.output_features(), 2u);
}

TEST(Network, PredictOneMatchesBatchPredict) {
  Network network(2, {{3, Activation::kTanh}, {2, Activation::kIdentity}},
                  Loss::kMeanSquaredError, std::make_unique<Sgd>(0.1),
                  util::Rng(43));
  const std::vector<double> x = {0.3, 0.7};
  const auto single = network.PredictOne(x);
  const auto batch = network.Predict(Tensor::Row(x));
  ASSERT_EQ(single.size(), 2u);
  EXPECT_DOUBLE_EQ(single[0], batch(0, 0));
  EXPECT_DOUBLE_EQ(single[1], batch(0, 1));
}

}  // namespace
}  // namespace jarvis::neural
