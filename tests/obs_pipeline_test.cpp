// End-to-end observability: runs the full learn→optimize→suggest pipeline
// with metrics wired and pins (a) the golden-determinism contract — the
// deterministic snapshot subset is bit-identical across reruns of the same
// seeded workload — and (b) the cross-stage counter invariants that hold
// by construction.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/jarvis.h"
#include "core/online_monitor.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"
#include "sim/testbed.h"

namespace jarvis::core {
namespace {

struct PipelineRun {
  std::unique_ptr<Jarvis> jarvis;
  std::size_t events_fed = 0;
  std::size_t episodes_learned = 0;
};

class ObsPipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 2000;
    testbed_ = new sim::Testbed(config);
    learner_ = new spl::SafetyPolicyLearner(testbed_->home_a(),
                                            spl::SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete learner_;
    delete testbed_;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  // One full seeded pipeline: raw events through the parser, SPL learning,
  // a (tiny) DQN optimization, and one deployment suggestion. Everything
  // is seeded, so reruns are bit-identical.
  static PipelineRun RunPipeline(bool metrics_enabled = true) {
    sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                    404, sim::BehaviorConfig{0.0, 1});
    const auto generator = testbed_->home_a_generator();
    std::vector<events::Event> events;
    fsm::StateVector state = resident.OvernightState();
    double indoor = 21.0;
    for (int day = 0; day < 2; ++day) {
      const auto trace =
          resident.SimulateDay(generator.Generate(day), state, indoor);
      events.insert(events.end(), trace.events.begin(), trace.events.end());
      state = trace.episode.FinalState(testbed_->home_a());
      indoor = trace.indoor_c.back();
    }

    JarvisConfig config;
    config.trainer.episodes = 4;
    config.restarts = 1;
    config.metrics_enabled = metrics_enabled;
    PipelineRun run;
    run.events_fed = events.size();
    run.jarvis = std::make_unique<Jarvis>(testbed_->home_a(), config);
    run.episodes_learned = run.jarvis->LearnFromEvents(
        events, resident.OvernightState(), util::SimTime(0),
        testbed_->BuildTrainingSet());
    const sim::DayTrace day = testbed_->home_b_data().Day(1);
    run.jarvis->OptimizeDay(day, rl::RewardWeights{});
    run.jarvis->SuggestAction(day.episode.initial_state(), 480);
    return run;
  }

  static events::Event CommandEvent(int minute, const std::string& device,
                                    const std::string& value,
                                    const std::string& command) {
    events::Event event;
    event.date = util::SimTime(minute);
    event.device_label = device;
    event.attribute = "state";
    event.attribute_value = value;
    event.command = command;
    return event;
  }

  static events::Event SensorEvent(int minute, const std::string& device,
                                   const std::string& value) {
    return CommandEvent(minute, device, value, "");
  }

  static sim::Testbed* testbed_;
  static spl::SafetyPolicyLearner* learner_;
};

sim::Testbed* ObsPipelineFixture::testbed_ = nullptr;
spl::SafetyPolicyLearner* ObsPipelineFixture::learner_ = nullptr;

TEST_F(ObsPipelineFixture, GoldenSnapshotIdenticalAcrossReruns) {
  const PipelineRun first = RunPipeline();
  const PipelineRun second = RunPipeline();
  const obs::MetricsSnapshot golden_a =
      first.jarvis->TakeMetricsSnapshot().DeterministicOnly();
  const obs::MetricsSnapshot golden_b =
      second.jarvis->TakeMetricsSnapshot().DeterministicOnly();
  EXPECT_FALSE(golden_a.empty());
  // Metrics are observational: the deterministic subset must be
  // bit-identical across reruns of the same seeded workload (timers keep
  // ticking, which is exactly what DeterministicOnly strips).
  EXPECT_EQ(golden_a, golden_b);
}

TEST_F(ObsPipelineFixture, CounterInvariantsAcrossStages) {
  const PipelineRun run = RunPipeline();
  const obs::MetricsSnapshot snapshot = run.jarvis->TakeMetricsSnapshot();

  // Parser conservation: every event offered is accepted or dropped.
  const std::uint64_t seen =
      snapshot.CounterValue("events.parser.events_seen");
  EXPECT_EQ(seen, run.events_fed);
  EXPECT_EQ(seen,
            snapshot.CounterValue("events.parser.events_accepted") +
                snapshot.CounterValue("events.parser.events_dropped"));

  // The obs counters mirror the pipeline's own degradation accounting.
  const HealthReport& health = run.jarvis->Health();
  EXPECT_EQ(seen, health.parse.events_seen);
  EXPECT_EQ(snapshot.CounterValue("events.parser.episodes_parsed"),
            run.episodes_learned);
  EXPECT_EQ(snapshot.CounterValue("spl.learner.episodes_used"),
            health.learn.episodes_used);
  EXPECT_EQ(snapshot.CounterValue("spl.learner.episodes_skipped"),
            health.learn.episodes_skipped);
  EXPECT_EQ(snapshot.CounterValue("spl.learner.episodes_offered"),
            health.learn.episodes_used + health.learn.episodes_skipped);
  EXPECT_EQ(snapshot.CounterValue("spl.learner.observations"),
            health.learn.observations);

  // Facade call counters.
  EXPECT_EQ(snapshot.CounterValue("core.jarvis.learn_calls"), 1u);
  EXPECT_EQ(snapshot.CounterValue("core.jarvis.optimize_calls"), 1u);
  EXPECT_EQ(snapshot.CounterValue("core.jarvis.suggest_calls"), 1u);

  // The DQN stage ran and reported.
  EXPECT_GE(snapshot.CounterValue("rl.trainer.episodes"), 4u);
  EXPECT_GT(snapshot.CounterValue("rl.trainer.steps"), 0u);
  EXPECT_GT(snapshot.CounterValue("rl.agent.actions_selected"), 0u);
  EXPECT_GT(snapshot.CounterValue("rl.agent.replay_batches"), 0u);
  EXPECT_EQ(snapshot.FindHistogram("rl.agent.replay_loss").count,
            snapshot.CounterValue("rl.agent.replay_batches"));
}

TEST_F(ObsPipelineFixture, MonitorDecisionInvariant) {
  obs::Registry registry;
  OnlineMonitor monitor(testbed_->home_a(), *learner_,
                        fsm::StateVector(11, 0));
  monitor.SetMetrics(&registry);

  monitor.MarkStateUnknown(0);  // staleness transition 1
  // Fail-safe denial: lock state is untrusted.
  monitor.Consume(CommandEvent(120, "lock", "unlocked", "unlock"));
  // Good report restores trust; the next command is learner-classified.
  monitor.Consume(SensorEvent(121, "lock", "unlocked"));
  monitor.Consume(CommandEvent(122, "lock", "locked", "lock"));
  // Unknown vocabulary: counted, not a decision.
  monitor.Consume(CommandEvent(123, "toaster", "on", "pop"));
  // Corrupt sensor report: staleness transition 2, then a denial.
  monitor.Consume(SensorEvent(124, "temp_sensor", "??corrupt??"));
  monitor.Consume(CommandEvent(125, "temp_sensor", "off", "power_off"));

  const obs::MetricsSnapshot snapshot = registry.TakeSnapshot();
  const std::uint64_t decisions =
      snapshot.CounterValue("core.monitor.decisions");
  // Every command verdict is exactly one of allowed / denied / benign.
  EXPECT_EQ(decisions, snapshot.CounterValue("core.monitor.allowed") +
                           snapshot.CounterValue("core.monitor.denied") +
                           snapshot.CounterValue("core.monitor.benign_anomalies"));
  EXPECT_EQ(decisions, 3u);  // two fail-safe denials + one classification
  EXPECT_EQ(snapshot.CounterValue("core.monitor.failsafe_denials"), 2u);
  // Denied folds learner violations and fail-safe denials together.
  EXPECT_EQ(snapshot.CounterValue("core.monitor.denied"),
            monitor.violations() + monitor.failsafe_denials());
  EXPECT_EQ(snapshot.CounterValue("core.monitor.unknown_events"),
            monitor.unknown_events());
  EXPECT_EQ(snapshot.CounterValue("core.monitor.staleness_transitions"), 2u);
}

TEST_F(ObsPipelineFixture, SpanTreeShapesThePipeline) {
  const PipelineRun run = RunPipeline();
  const std::vector<obs::SpanRecord> spans = run.jarvis->FlushSpans();
  ASSERT_FALSE(spans.empty());

  std::set<std::string> roots;
  std::set<std::string> children;
  for (const obs::SpanRecord& span : spans) {
    (span.depth == 0 ? roots : children).insert(span.name);
  }
  EXPECT_TRUE(roots.count("learn") == 1);
  EXPECT_TRUE(roots.count("optimize") == 1);
  EXPECT_TRUE(children.count("learn.parse") == 1);
  EXPECT_TRUE(children.count("optimize.restart.0") == 1);
  // Flush drained everything.
  EXPECT_TRUE(run.jarvis->FlushSpans().empty());
}

TEST_F(ObsPipelineFixture, DisabledMetricsLeaveRegistryEmpty) {
  const PipelineRun run = RunPipeline(/*metrics_enabled=*/false);
  EXPECT_TRUE(run.jarvis->TakeMetricsSnapshot().empty());
  // And the pipeline still worked.
  EXPECT_TRUE(run.jarvis->learned());
}

}  // namespace
}  // namespace jarvis::core
