#include <gtest/gtest.h>

#include "util/check.h"

#include "fsm/device_library.h"
#include "sim/testbed.h"
#include "spl/ann_filter.h"
#include "spl/features.h"
#include "spl/learner.h"
#include "spl/safe_table.h"

namespace jarvis::spl {
namespace {

TEST(FeatureEncoder, WidthAndLayout) {
  const fsm::EnvironmentFsm home = fsm::BuildExampleHome();
  const FeatureEncoder encoder(home);
  EXPECT_EQ(encoder.feature_width(),
            home.codec().one_hot_width() + home.codec().mini_action_count() + 2);
  const fsm::StateVector state = {0, 0, 0, 2, 2};
  const fsm::MiniAction mini{2, 1};
  const auto features = encoder.Encode(state, mini, 720);
  EXPECT_EQ(features.size(), encoder.feature_width());
  // Exactly one action bit set.
  double action_bits = 0.0;
  for (std::size_t i = home.codec().one_hot_width();
       i < features.size() - 2; ++i) {
    action_bits += features[i];
  }
  EXPECT_DOUBLE_EQ(action_bits, 1.0);
  // Time features at noon: sin ~ 0, cos ~ -1.
  EXPECT_NEAR(features[features.size() - 2], 0.0, 1e-9);
  EXPECT_NEAR(features[features.size() - 1], -1.0, 1e-9);
}

TEST(FeatureEncoder, SplitActionSkipsNoOps) {
  fsm::ActionVector action = {fsm::kNoAction, 1, fsm::kNoAction, 0, fsm::kNoAction};
  const auto minis = FeatureEncoder::SplitAction(action);
  ASSERT_EQ(minis.size(), 2u);
  EXPECT_EQ(minis[0].device, 1);
  EXPECT_EQ(minis[0].action, 1);
  EXPECT_EQ(minis[1].device, 3);
  EXPECT_EQ(minis[1].action, 0);
  EXPECT_TRUE(FeatureEncoder::SplitAction(
                  fsm::ActionVector(5, fsm::kNoAction))
                  .empty());
}

class SafeTableFixture : public ::testing::Test {
 protected:
  SafeTableFixture() : home_(fsm::BuildExampleHome()) {}

  fsm::ActionVector LightOn() const {
    fsm::ActionVector action(home_.device_count(), fsm::kNoAction);
    action[2] = *home_.device(2).FindAction("power_on");
    return action;
  }

  fsm::EnvironmentFsm home_;
  fsm::StateVector state_ = {0, 0, 0, 2, 2};
};

TEST_F(SafeTableFixture, NothingAdmittedBeforeFinalize) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 400);
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 400));
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400));
}

TEST_F(SafeTableFixture, NoOpAlwaysSafeAfterFinalize) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, fsm::ActionVector(5, fsm::kNoAction), 0));
  EXPECT_TRUE(table.IsMiniActionSafe(state_, {0, fsm::kNoAction}, 0));
}

TEST_F(SafeTableFixture, ThresholdGatesAdmission) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 2);
  table.Observe(state_, LightOn(), 400);
  table.Observe(state_, LightOn(), 401);
  table.Finalize();
  // Count 2 is not > 2.
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 400));
  table.Observe(state_, LightOn(), 402);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400));
  EXPECT_THROW(SafeTransitionTable(home_, KeyMode::kFactoredContext, -1),
               util::CheckError);
}

TEST_F(SafeTableFixture, TimeBucketsSeparateDayParts) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 7 * 60);  // bucket [6,9)
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 8 * 60));   // same bucket
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 3 * 60));  // night bucket
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 12 * 60));
}

TEST_F(SafeTableFixture, SecurityContextSeparatesStates) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  // Unlock observed with door sensor reporting an authorized user.
  fsm::StateVector arrival_state = state_;
  arrival_state[1] = *home_.device(1).FindState("auth_user");
  fsm::ActionVector unlock(home_.device_count(), fsm::kNoAction);
  unlock[0] = *home_.device(0).FindAction("unlock");
  table.Observe(arrival_state, unlock, 17 * 60);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(arrival_state, unlock, 17 * 60));
  // Same action, door sensing (nobody verified): different context key.
  EXPECT_FALSE(table.IsSafe(state_, unlock, 17 * 60));
  // Unauthorized user at the door: also different.
  fsm::StateVector unauth_state = state_;
  unauth_state[1] = *home_.device(1).FindState("unauth_user");
  EXPECT_FALSE(table.IsSafe(unauth_state, unlock, 17 * 60));
}

TEST_F(SafeTableFixture, FactoredModeGeneralizesOverIrrelevantDevices) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 400);
  table.Finalize();
  // The thermostat state is not part of the light's safety context.
  fsm::StateVector different = state_;
  different[3] = *home_.device(3).FindState("heat");
  EXPECT_TRUE(table.IsSafe(different, LightOn(), 400));
}

TEST_F(SafeTableFixture, ExactModeDoesNotGeneralize) {
  SafeTransitionTable table(home_, KeyMode::kExactState, 0);
  table.Observe(state_, LightOn(), 400);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400));
  fsm::StateVector different = state_;
  different[3] = *home_.device(3).FindState("heat");
  EXPECT_FALSE(table.IsSafe(different, LightOn(), 400))
      << "exact mode must key on the full composite state";
}

TEST_F(SafeTableFixture, UnsafeMiniActionsPinpointOffenders) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 400);
  table.Finalize();
  fsm::ActionVector mixed = LightOn();
  mixed[4] = *home_.device(4).FindAction("power_off");  // never observed
  const auto unsafe = table.UnsafeMiniActions(state_, mixed, 400);
  ASSERT_EQ(unsafe.size(), 1u);
  EXPECT_EQ(unsafe[0].device, 4);
}

// --- ANN filter ---------------------------------------------------------

class AnnFixture : public ::testing::Test {
 protected:
  AnnFixture() : home_(fsm::BuildFullHome()) {}

  // A small but separable labeled set: daytime light use is normal,
  // small-hours TV is a benign anomaly.
  std::vector<sim::LabeledSample> MakeSeparableSet() const {
    std::vector<sim::LabeledSample> samples;
    fsm::StateVector state(home_.device_count(), 0);
    util::Rng rng(5);
    for (int i = 0; i < 300; ++i) {
      fsm::ActionVector normal(home_.device_count(), fsm::kNoAction);
      normal[2] = 1;  // light power_on
      samples.push_back(
          {{state, normal,
            static_cast<int>(rng.NextInt(17 * 60, 22 * 60))},
           false,
           sim::AnomalyKind::kOutOfScheduleLight});
      fsm::ActionVector anomaly(home_.device_count(), fsm::kNoAction);
      anomaly[7] = 0;  // tv power_on
      samples.push_back({{state, anomaly,
                          static_cast<int>(rng.NextInt(2 * 60, 4 * 60))},
                         true,
                         sim::AnomalyKind::kTvLeftOnShort});
    }
    return samples;
  }

  fsm::EnvironmentFsm home_;
};

TEST_F(AnnFixture, LearnsSeparableBenignPattern) {
  AnnFilter filter(home_, AnnFilterConfig{}, 3);
  EXPECT_FALSE(filter.trained());
  const auto samples = MakeSeparableSet();
  filter.Train(samples);
  EXPECT_TRUE(filter.trained());
  EXPECT_GT(filter.Evaluate(samples), 0.97);

  fsm::StateVector state(home_.device_count(), 0);
  EXPECT_GT(filter.BenignScore(state, {7, 0}, 3 * 60), 0.5);
  EXPECT_LT(filter.BenignScore(state, {2, 1}, 19 * 60), 0.5);
}

TEST_F(AnnFixture, JointActionScoreIsMinOverComponents) {
  AnnFilter filter(home_, AnnFilterConfig{}, 3);
  filter.Train(MakeSeparableSet());
  fsm::StateVector state(home_.device_count(), 0);
  fsm::ActionVector joint(home_.device_count(), fsm::kNoAction);
  joint[7] = 0;  // benign-looking
  joint[2] = 1;  // normal-looking (low benign score)
  fsm::TriggerAction ta{state, joint, 3 * 60};
  const double joint_score = filter.BenignScore(ta);
  const double tv_score = filter.BenignScore(state, {7, 0}, 3 * 60);
  const double light_score = filter.BenignScore(state, {2, 1}, 3 * 60);
  EXPECT_DOUBLE_EQ(joint_score, std::min(tv_score, light_score));
  // Empty action scores 0.
  fsm::TriggerAction empty{state,
                           fsm::ActionVector(home_.device_count(),
                                             fsm::kNoAction),
                           0};
  EXPECT_DOUBLE_EQ(filter.BenignScore(empty), 0.0);
}

TEST_F(AnnFixture, TrainRejectsEmpty) {
  AnnFilter filter(home_, AnnFilterConfig{}, 3);
  EXPECT_THROW(filter.Train({}), std::invalid_argument);
}

// --- Full SPL integration -------------------------------------------—---

class SplIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 3000;
    testbed_ = new sim::Testbed(config);
    learner_ = new SafetyPolicyLearner(testbed_->home_a(), SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete learner_;
    delete testbed_;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  static sim::Testbed* testbed_;
  static SafetyPolicyLearner* learner_;
};

sim::Testbed* SplIntegration::testbed_ = nullptr;
SafetyPolicyLearner* SplIntegration::learner_ = nullptr;

TEST_F(SplIntegration, LearningPopulatesTable) {
  EXPECT_TRUE(learner_->learned());
  EXPECT_GT(learner_->table().admitted_key_count(), 20u);
}

TEST_F(SplIntegration, NaturalBehaviorAuditsClean) {
  // A fresh (non-learning) day of natural behavior should raise no
  // violations — at most a handful of benign-anomaly flags.
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  777);
  const auto generator = testbed_->home_a_generator();
  // Day 30: not in the learning set (learning days are multiples of 52).
  const auto trace = resident.SimulateDay(generator.Generate(30),
                                          resident.OvernightState(), 21.0);
  const auto audit = learner_->AuditEpisode(trace.episode);
  EXPECT_GT(audit.transitions_checked, 10u);
  EXPECT_LE(audit.violations, audit.transitions_checked / 10)
      << "false-positive violations on benign behavior";
}

TEST_F(SplIntegration, AllViolationTypesDetected) {
  const auto violations = testbed_->BuildViolations();
  std::size_t detected = 0;
  for (const auto& violation : violations) {
    const auto verdict = learner_->Classify(violation.state, violation.action,
                                            violation.minute);
    if (verdict == Verdict::kViolation) ++detected;
  }
  // Paper: 100% of the 214 violations flagged.
  EXPECT_EQ(detected, violations.size());
}

TEST_F(SplIntegration, BenignAnomaliesFiltered) {
  sim::AnomalyGenerator generator(testbed_->home_a(), 31337);
  // Benign anomalies are human errors: evaluate them in a someone-is-home
  // context (lock unlocked), matching how they are labeled.
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  state[0] = *testbed_->home_a().device(0).FindState("unlocked");
  int benign = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto instance = generator.Generate(state);
    const auto verdict =
        learner_->Classify(state, instance.action, instance.minute);
    ++total;
    if (verdict != Verdict::kViolation) ++benign;
  }
  // Paper: 99.2% of benign anomalies filtered; we require > 90% here to
  // keep the unit test robust to seeds.
  EXPECT_GT(static_cast<double>(benign) / total, 0.9);
}

TEST_F(SplIntegration, ClassifyBeforeLearnThrows) {
  SafetyPolicyLearner fresh(testbed_->home_a(), SplConfig{});
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  EXPECT_THROW(fresh.ClassifyMini(state, {0, 0}, 0), std::logic_error);
}

TEST_F(SplIntegration, LearnValidatesInputs) {
  SafetyPolicyLearner fresh(testbed_->home_a(), SplConfig{});
  EXPECT_THROW(fresh.Learn({}, testbed_->BuildTrainingSet()),
               std::invalid_argument);
  EXPECT_THROW(fresh.Learn(testbed_->HomeALearningEpisodes(), {}),
               std::invalid_argument);
}

TEST_F(SplIntegration, GappyEpisodesSkippedNotFatal) {
  // A degraded stream hands the learner empty and truncated episodes among
  // the good ones; they are skipped and counted, and learning proceeds.
  auto episodes = testbed_->HomeALearningEpisodes();
  const std::size_t good = episodes.size();
  episodes.emplace_back(episodes.front().config(), util::SimTime(0),
                        episodes.front().initial_state());  // empty

  SplConfig config;
  config.min_episode_fraction = 0.5;
  SafetyPolicyLearner tolerant(testbed_->home_a(), config);
  tolerant.Learn(episodes, testbed_->BuildTrainingSet());

  EXPECT_TRUE(tolerant.learned());
  const LearnReport& report = tolerant.learn_report();
  EXPECT_EQ(report.episodes_offered, good + 1);
  EXPECT_EQ(report.episodes_used, good);
  EXPECT_EQ(report.episodes_skipped, 1u);
  EXPECT_GT(report.observations, 0u);
}

TEST_F(SplIntegration, MinEpisodeFractionSkipsTruncatedEpisodes) {
  auto episodes = testbed_->HomeALearningEpisodes();
  // A truncated episode: a tenth of the configured period.
  fsm::Episode partial(episodes.front().config(), util::SimTime(0),
                       episodes.front().initial_state());
  const int steps = episodes.front().config().StepsPerEpisode() / 10;
  fsm::StateVector state = partial.initial_state();
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  for (int i = 0; i < steps; ++i) {
    partial.Record(util::SimTime(i), state, noop);
  }
  episodes.push_back(partial);

  SplConfig config;
  config.min_episode_fraction = 0.5;
  SafetyPolicyLearner tolerant(testbed_->home_a(), config);
  tolerant.Learn(episodes, testbed_->BuildTrainingSet());
  EXPECT_EQ(tolerant.learn_report().episodes_skipped, 1u);

  // With no minimum, the truncated episode contributes.
  SafetyPolicyLearner lax(testbed_->home_a(), SplConfig{});
  lax.Learn(episodes, testbed_->BuildTrainingSet());
  EXPECT_EQ(lax.learn_report().episodes_skipped, 0u);
  EXPECT_EQ(lax.learn_report().episodes_used,
            tolerant.learn_report().episodes_used + 1);
}

TEST_F(SplIntegration, AllEpisodesGappyAborts) {
  const fsm::Episode shape = testbed_->HomeALearningEpisodes().front();
  std::vector<fsm::Episode> empties;
  empties.emplace_back(shape.config(), util::SimTime(0),
                       shape.initial_state());
  SafetyPolicyLearner fresh(testbed_->home_a(), SplConfig{});
  EXPECT_THROW(fresh.Learn(empties, testbed_->BuildTrainingSet()),
               std::invalid_argument);
}

TEST_F(SplIntegration, AnnDisabledModeTreatsAnomaliesAsViolations) {
  SplConfig config;
  config.use_ann_filter = false;
  SafetyPolicyLearner strict(testbed_->home_a(), config);
  strict.Learn(testbed_->HomeALearningEpisodes(), {});
  sim::AnomalyGenerator generator(testbed_->home_a(), 123);
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  int violations = 0;
  for (int i = 0; i < 50; ++i) {
    const auto instance = generator.Generate(state);
    if (strict.Classify(state, instance.action, instance.minute) ==
        Verdict::kViolation) {
      ++violations;
    }
  }
  // Without the ANN, off-whitelist benign anomalies are all flagged.
  EXPECT_GT(violations, 40);
}

TEST(Verdicts, Names) {
  EXPECT_EQ(VerdictName(Verdict::kSafe), "safe");
  EXPECT_EQ(VerdictName(Verdict::kBenignAnomaly), "benign-anomaly");
  EXPECT_EQ(VerdictName(Verdict::kViolation), "violation");
}

}  // namespace
}  // namespace jarvis::spl
