#include <gtest/gtest.h>

#include "util/check.h"

#include "fsm/device_library.h"
#include "neural/serialize.h"
#include "sim/testbed.h"
#include "spl/ann_filter.h"
#include "spl/features.h"
#include "spl/learner.h"
#include "spl/safe_table.h"

namespace jarvis::spl {
namespace {

TEST(FeatureEncoder, WidthAndLayout) {
  const fsm::EnvironmentFsm home = fsm::BuildExampleHome();
  const FeatureEncoder encoder(home);
  EXPECT_EQ(encoder.feature_width(),
            home.codec().one_hot_width() + home.codec().mini_action_count() + 2);
  const fsm::StateVector state = {0, 0, 0, 2, 2};
  const fsm::MiniAction mini{2, 1};
  const auto features = encoder.Encode(state, mini, 720);
  EXPECT_EQ(features.size(), encoder.feature_width());
  // Exactly one action bit set.
  double action_bits = 0.0;
  for (std::size_t i = home.codec().one_hot_width();
       i < features.size() - 2; ++i) {
    action_bits += features[i];
  }
  EXPECT_DOUBLE_EQ(action_bits, 1.0);
  // Time features at noon: sin ~ 0, cos ~ -1.
  EXPECT_NEAR(features[features.size() - 2], 0.0, 1e-9);
  EXPECT_NEAR(features[features.size() - 1], -1.0, 1e-9);
}

TEST(FeatureEncoder, SplitActionSkipsNoOps) {
  fsm::ActionVector action = {fsm::kNoAction, 1, fsm::kNoAction, 0, fsm::kNoAction};
  const auto minis = FeatureEncoder::SplitAction(action);
  ASSERT_EQ(minis.size(), 2u);
  EXPECT_EQ(minis[0].device, 1);
  EXPECT_EQ(minis[0].action, 1);
  EXPECT_EQ(minis[1].device, 3);
  EXPECT_EQ(minis[1].action, 0);
  EXPECT_TRUE(FeatureEncoder::SplitAction(
                  fsm::ActionVector(5, fsm::kNoAction))
                  .empty());
}

class SafeTableFixture : public ::testing::Test {
 protected:
  SafeTableFixture() : home_(fsm::BuildExampleHome()) {}

  fsm::ActionVector LightOn() const {
    fsm::ActionVector action(home_.device_count(), fsm::kNoAction);
    action[2] = *home_.device(2).FindAction("power_on");
    return action;
  }

  fsm::EnvironmentFsm home_;
  fsm::StateVector state_ = {0, 0, 0, 2, 2};
};

TEST_F(SafeTableFixture, NothingAdmittedBeforeFinalize) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 400);
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 400));
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400));
}

TEST_F(SafeTableFixture, NoOpAlwaysSafeAfterFinalize) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, fsm::ActionVector(5, fsm::kNoAction), 0));
  EXPECT_TRUE(table.IsMiniActionSafe(state_, {0, fsm::kNoAction}, 0));
}

TEST_F(SafeTableFixture, ThresholdGatesAdmission) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 2);
  table.Observe(state_, LightOn(), 400);
  table.Observe(state_, LightOn(), 401);
  table.Finalize();
  // Count 2 is not > 2.
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 400));
  table.Observe(state_, LightOn(), 402);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400));
  EXPECT_THROW(SafeTransitionTable(home_, KeyMode::kFactoredContext, -1),
               util::CheckError);
}

TEST_F(SafeTableFixture, TimeBucketsSeparateDayParts) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 7 * 60);  // bucket [6,9)
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 8 * 60));   // same bucket
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 3 * 60));  // night bucket
  EXPECT_FALSE(table.IsSafe(state_, LightOn(), 12 * 60));
}

TEST_F(SafeTableFixture, SecurityContextSeparatesStates) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  // Unlock observed with door sensor reporting an authorized user.
  fsm::StateVector arrival_state = state_;
  arrival_state[1] = *home_.device(1).FindState("auth_user");
  fsm::ActionVector unlock(home_.device_count(), fsm::kNoAction);
  unlock[0] = *home_.device(0).FindAction("unlock");
  table.Observe(arrival_state, unlock, 17 * 60);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(arrival_state, unlock, 17 * 60));
  // Same action, door sensing (nobody verified): different context key.
  EXPECT_FALSE(table.IsSafe(state_, unlock, 17 * 60));
  // Unauthorized user at the door: also different.
  fsm::StateVector unauth_state = state_;
  unauth_state[1] = *home_.device(1).FindState("unauth_user");
  EXPECT_FALSE(table.IsSafe(unauth_state, unlock, 17 * 60));
}

TEST_F(SafeTableFixture, FactoredModeGeneralizesOverIrrelevantDevices) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 400);
  table.Finalize();
  // The thermostat state is not part of the light's safety context.
  fsm::StateVector different = state_;
  different[3] = *home_.device(3).FindState("heat");
  EXPECT_TRUE(table.IsSafe(different, LightOn(), 400));
}

TEST_F(SafeTableFixture, ExactModeDoesNotGeneralize) {
  SafeTransitionTable table(home_, KeyMode::kExactState, 0);
  table.Observe(state_, LightOn(), 400);
  table.Finalize();
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400));
  fsm::StateVector different = state_;
  different[3] = *home_.device(3).FindState("heat");
  EXPECT_FALSE(table.IsSafe(different, LightOn(), 400))
      << "exact mode must key on the full composite state";
}

TEST_F(SafeTableFixture, UnsafeMiniActionsPinpointOffenders) {
  SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
  table.Observe(state_, LightOn(), 400);
  table.Finalize();
  fsm::ActionVector mixed = LightOn();
  mixed[4] = *home_.device(4).FindAction("power_off");  // never observed
  const auto unsafe = table.UnsafeMiniActions(state_, mixed, 400);
  ASSERT_EQ(unsafe.size(), 1u);
  EXPECT_EQ(unsafe[0].device, 4);
}

// --- ANN filter ---------------------------------------------------------

class AnnFixture : public ::testing::Test {
 protected:
  AnnFixture() : home_(fsm::BuildFullHome()) {}

  // A small but separable labeled set: daytime light use is normal,
  // small-hours TV is a benign anomaly.
  std::vector<sim::LabeledSample> MakeSeparableSet() const {
    std::vector<sim::LabeledSample> samples;
    fsm::StateVector state(home_.device_count(), 0);
    util::Rng rng(5);
    for (int i = 0; i < 300; ++i) {
      fsm::ActionVector normal(home_.device_count(), fsm::kNoAction);
      normal[2] = 1;  // light power_on
      samples.push_back(
          {{state, normal,
            static_cast<int>(rng.NextInt(17 * 60, 22 * 60))},
           false,
           sim::AnomalyKind::kOutOfScheduleLight});
      fsm::ActionVector anomaly(home_.device_count(), fsm::kNoAction);
      anomaly[7] = 0;  // tv power_on
      samples.push_back({{state, anomaly,
                          static_cast<int>(rng.NextInt(2 * 60, 4 * 60))},
                         true,
                         sim::AnomalyKind::kTvLeftOnShort});
    }
    return samples;
  }

  fsm::EnvironmentFsm home_;
};

TEST_F(AnnFixture, LearnsSeparableBenignPattern) {
  AnnFilter filter(home_, AnnFilterConfig{}, 3);
  EXPECT_FALSE(filter.trained());
  const auto samples = MakeSeparableSet();
  filter.Train(samples);
  EXPECT_TRUE(filter.trained());
  EXPECT_GT(filter.Evaluate(samples), 0.97);

  fsm::StateVector state(home_.device_count(), 0);
  EXPECT_GT(filter.BenignScore(state, {7, 0}, 3 * 60), 0.5);
  EXPECT_LT(filter.BenignScore(state, {2, 1}, 19 * 60), 0.5);
}

TEST_F(AnnFixture, JointActionScoreIsMinOverComponents) {
  AnnFilter filter(home_, AnnFilterConfig{}, 3);
  filter.Train(MakeSeparableSet());
  fsm::StateVector state(home_.device_count(), 0);
  fsm::ActionVector joint(home_.device_count(), fsm::kNoAction);
  joint[7] = 0;  // benign-looking
  joint[2] = 1;  // normal-looking (low benign score)
  fsm::TriggerAction ta{state, joint, 3 * 60};
  const double joint_score = filter.BenignScore(ta);
  const double tv_score = filter.BenignScore(state, {7, 0}, 3 * 60);
  const double light_score = filter.BenignScore(state, {2, 1}, 3 * 60);
  EXPECT_DOUBLE_EQ(joint_score, std::min(tv_score, light_score));
  // Empty action scores 0.
  fsm::TriggerAction empty{state,
                           fsm::ActionVector(home_.device_count(),
                                             fsm::kNoAction),
                           0};
  EXPECT_DOUBLE_EQ(filter.BenignScore(empty), 0.0);
}

TEST_F(AnnFixture, TrainRejectsEmpty) {
  AnnFilter filter(home_, AnnFilterConfig{}, 3);
  EXPECT_THROW(filter.Train({}), std::invalid_argument);
}

// --- Full SPL integration -------------------------------------------—---

class SplIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 3000;
    testbed_ = new sim::Testbed(config);
    learner_ = new SafetyPolicyLearner(testbed_->home_a(), SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete learner_;
    delete testbed_;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  static sim::Testbed* testbed_;
  static SafetyPolicyLearner* learner_;
};

sim::Testbed* SplIntegration::testbed_ = nullptr;
SafetyPolicyLearner* SplIntegration::learner_ = nullptr;

TEST_F(SplIntegration, LearningPopulatesTable) {
  EXPECT_TRUE(learner_->learned());
  EXPECT_GT(learner_->table().admitted_key_count(), 20u);
}

TEST_F(SplIntegration, NaturalBehaviorAuditsClean) {
  // A fresh (non-learning) day of natural behavior should raise no
  // violations — at most a handful of benign-anomaly flags.
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  777);
  const auto generator = testbed_->home_a_generator();
  // Day 30: not in the learning set (learning days are multiples of 52).
  const auto trace = resident.SimulateDay(generator.Generate(30),
                                          resident.OvernightState(), 21.0);
  const auto audit = learner_->AuditEpisode(trace.episode);
  EXPECT_GT(audit.transitions_checked, 10u);
  EXPECT_LE(audit.violations, audit.transitions_checked / 10)
      << "false-positive violations on benign behavior";
}

TEST_F(SplIntegration, AllViolationTypesDetected) {
  const auto violations = testbed_->BuildViolations();
  std::size_t detected = 0;
  for (const auto& violation : violations) {
    const auto verdict = learner_->Classify(violation.state, violation.action,
                                            violation.minute);
    if (verdict == Verdict::kViolation) ++detected;
  }
  // Paper: 100% of the 214 violations flagged.
  EXPECT_EQ(detected, violations.size());
}

TEST_F(SplIntegration, BenignAnomaliesFiltered) {
  sim::AnomalyGenerator generator(testbed_->home_a(), 31337);
  // Benign anomalies are human errors: evaluate them in a someone-is-home
  // context (lock unlocked), matching how they are labeled.
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  state[0] = *testbed_->home_a().device(0).FindState("unlocked");
  int benign = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto instance = generator.Generate(state);
    const auto verdict =
        learner_->Classify(state, instance.action, instance.minute);
    ++total;
    if (verdict != Verdict::kViolation) ++benign;
  }
  // Paper: 99.2% of benign anomalies filtered; we require > 90% here to
  // keep the unit test robust to seeds.
  EXPECT_GT(static_cast<double>(benign) / total, 0.9);
}

TEST_F(SplIntegration, ClassifyBeforeLearnThrows) {
  SafetyPolicyLearner fresh(testbed_->home_a(), SplConfig{});
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  EXPECT_THROW(fresh.ClassifyMini(state, {0, 0}, 0), std::logic_error);
}

TEST_F(SplIntegration, LearnValidatesInputs) {
  SafetyPolicyLearner fresh(testbed_->home_a(), SplConfig{});
  EXPECT_THROW(fresh.Learn({}, testbed_->BuildTrainingSet()),
               std::invalid_argument);
  EXPECT_THROW(fresh.Learn(testbed_->HomeALearningEpisodes(), {}),
               std::invalid_argument);
}

TEST_F(SplIntegration, GappyEpisodesSkippedNotFatal) {
  // A degraded stream hands the learner empty and truncated episodes among
  // the good ones; they are skipped and counted, and learning proceeds.
  auto episodes = testbed_->HomeALearningEpisodes();
  const std::size_t good = episodes.size();
  episodes.emplace_back(episodes.front().config(), util::SimTime(0),
                        episodes.front().initial_state());  // empty

  SplConfig config;
  config.min_episode_fraction = 0.5;
  SafetyPolicyLearner tolerant(testbed_->home_a(), config);
  tolerant.Learn(episodes, testbed_->BuildTrainingSet());

  EXPECT_TRUE(tolerant.learned());
  const LearnReport& report = tolerant.learn_report();
  EXPECT_EQ(report.episodes_offered, good + 1);
  EXPECT_EQ(report.episodes_used, good);
  EXPECT_EQ(report.episodes_skipped, 1u);
  EXPECT_GT(report.observations, 0u);
}

TEST_F(SplIntegration, MinEpisodeFractionSkipsTruncatedEpisodes) {
  auto episodes = testbed_->HomeALearningEpisodes();
  // A truncated episode: a tenth of the configured period.
  fsm::Episode partial(episodes.front().config(), util::SimTime(0),
                       episodes.front().initial_state());
  const int steps = episodes.front().config().StepsPerEpisode() / 10;
  fsm::StateVector state = partial.initial_state();
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  for (int i = 0; i < steps; ++i) {
    partial.Record(util::SimTime(i), state, noop);
  }
  episodes.push_back(partial);

  SplConfig config;
  config.min_episode_fraction = 0.5;
  SafetyPolicyLearner tolerant(testbed_->home_a(), config);
  tolerant.Learn(episodes, testbed_->BuildTrainingSet());
  EXPECT_EQ(tolerant.learn_report().episodes_skipped, 1u);

  // With no minimum, the truncated episode contributes.
  SafetyPolicyLearner lax(testbed_->home_a(), SplConfig{});
  lax.Learn(episodes, testbed_->BuildTrainingSet());
  EXPECT_EQ(lax.learn_report().episodes_skipped, 0u);
  EXPECT_EQ(lax.learn_report().episodes_used,
            tolerant.learn_report().episodes_used + 1);
}

TEST_F(SplIntegration, AllEpisodesGappyAborts) {
  const fsm::Episode shape = testbed_->HomeALearningEpisodes().front();
  std::vector<fsm::Episode> empties;
  empties.emplace_back(shape.config(), util::SimTime(0),
                       shape.initial_state());
  SafetyPolicyLearner fresh(testbed_->home_a(), SplConfig{});
  EXPECT_THROW(fresh.Learn(empties, testbed_->BuildTrainingSet()),
               std::invalid_argument);
}

TEST_F(SplIntegration, AnnDisabledModeTreatsAnomaliesAsViolations) {
  SplConfig config;
  config.use_ann_filter = false;
  SafetyPolicyLearner strict(testbed_->home_a(), config);
  strict.Learn(testbed_->HomeALearningEpisodes(), {});
  sim::AnomalyGenerator generator(testbed_->home_a(), 123);
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  int violations = 0;
  for (int i = 0; i < 50; ++i) {
    const auto instance = generator.Generate(state);
    if (strict.Classify(state, instance.action, instance.minute) ==
        Verdict::kViolation) {
      ++violations;
    }
  }
  // Without the ANN, off-whitelist benign anomalies are all flagged.
  EXPECT_GT(violations, 40);
}

// --- Serialized-state restore hardening ---------------------------------
//
// Checkpoint payloads are untrusted input (DESIGN.md §14): a whitelist
// document corrupted at rest — or crafted — must be REJECTED whole, never
// partially applied, and a rejected load must leave the previous
// (fail-safe) state untouched.

class SafeTableRestoreFixture : public SafeTableFixture {
 protected:
  // A small finalized table and its serialized form.
  util::JsonValue LearnedDoc() {
    SafeTransitionTable table(home_, KeyMode::kFactoredContext, 0);
    table.Observe(state_, LightOn(), 400);
    table.Finalize();
    return table.ToJson();
  }

  SafeTransitionTable FreshTable() {
    return SafeTransitionTable(home_, KeyMode::kFactoredContext, 0);
  }
};

TEST_F(SafeTableRestoreFixture, JsonRoundTripPreservesAdmissions) {
  SafeTransitionTable restored = FreshTable();
  restored.LoadJson(LearnedDoc());
  EXPECT_TRUE(restored.IsSafe(state_, LightOn(), 400));
  EXPECT_FALSE(restored.IsSafe(state_, LightOn(), 3 * 60));
  // Second-generation serialization is stable.
  EXPECT_EQ(restored.ToJson().Dump(), LearnedDoc().Dump());
}

TEST_F(SafeTableRestoreFixture, RejectsMalformedKeyStrings) {
  for (const char* hostile : {"123abc", "-1", "", " 42", "0x10",
                              "99999999999999999999999999"}) {
    util::JsonValue doc = LearnedDoc();
    doc.MutableObject()["counts"].MutableArray()[0].MutableArray()[0] =
        util::JsonValue(hostile);
    SafeTransitionTable table = FreshTable();
    EXPECT_THROW(table.LoadJson(doc), util::CheckError) << hostile;
    // The rejected load left the table unfinalized: deny everything.
    EXPECT_FALSE(table.IsSafe(state_, LightOn(), 400)) << hostile;
  }
}

TEST_F(SafeTableRestoreFixture, RejectsHostileCounts) {
  const util::JsonValue hostile_counts[] = {
      util::JsonValue(-3),            // negative
      util::JsonValue(1.5),           // fractional
      util::JsonValue(4.0e9),         // exceeds int
      util::JsonValue("12"),          // wrong type
  };
  for (const util::JsonValue& count : hostile_counts) {
    util::JsonValue doc = LearnedDoc();
    doc.MutableObject()["counts"].MutableArray()[0].MutableArray()[1] = count;
    SafeTransitionTable table = FreshTable();
    EXPECT_ANY_THROW(table.LoadJson(doc)) << count.Dump();
    EXPECT_FALSE(table.IsSafe(state_, LightOn(), 400));
  }
}

TEST_F(SafeTableRestoreFixture, RejectsDuplicateKeys) {
  // Duplicate count keys would make the admitted set depend on which entry
  // "wins" — attacker-steerable ambiguity.
  util::JsonValue doc = LearnedDoc();
  auto& counts = doc.MutableObject()["counts"].MutableArray();
  counts.push_back(counts[0]);
  EXPECT_THROW(FreshTable().LoadJson(doc), util::CheckError);

  SafeTransitionTable forced(home_, KeyMode::kFactoredContext, 0);
  forced.ForceAdmit(state_, {2, 1}, 400);
  util::JsonValue forced_doc = forced.ToJson();
  auto& keys = forced_doc.MutableObject()["forced"].MutableArray();
  ASSERT_FALSE(keys.empty());
  keys.push_back(keys[0]);
  EXPECT_THROW(FreshTable().LoadJson(forced_doc), util::CheckError);
}

TEST_F(SafeTableRestoreFixture, RejectsConfigMismatches) {
  // A document for another key mode or threshold describes a different
  // safety contract; silently adopting it would mislabel every key.
  SafeTransitionTable exact(home_, KeyMode::kExactState, 0);
  exact.Observe(state_, LightOn(), 400);
  exact.Finalize();
  EXPECT_THROW(FreshTable().LoadJson(exact.ToJson()), util::CheckError);

  SafeTransitionTable strict(home_, KeyMode::kFactoredContext, 2);
  EXPECT_THROW(strict.LoadJson(LearnedDoc()), util::CheckError);

  util::JsonValue doc = LearnedDoc();
  doc.MutableObject()["mode"] = util::JsonValue("quantum");
  EXPECT_THROW(FreshTable().LoadJson(doc), util::CheckError);
}

TEST_F(SafeTableRestoreFixture, RejectsStructurallyBrokenEntries) {
  util::JsonValue triple = LearnedDoc();
  triple.MutableObject()["counts"].MutableArray()[0].MutableArray().push_back(
      util::JsonValue(1));
  EXPECT_THROW(FreshTable().LoadJson(triple), util::CheckError);

  util::JsonValue missing = LearnedDoc();
  missing.MutableObject().erase("counts");
  EXPECT_THROW(FreshTable().LoadJson(missing), util::JsonError);
}

TEST_F(SafeTableRestoreFixture, RejectedLoadLeavesPreviousStateIntact) {
  // Load a valid document, then a hostile one: the table must keep serving
  // the earlier whitelist (staged-commit contract), not end up half-wiped.
  SafeTransitionTable table = FreshTable();
  table.LoadJson(LearnedDoc());
  ASSERT_TRUE(table.IsSafe(state_, LightOn(), 400));

  util::JsonValue hostile = LearnedDoc();
  hostile.MutableObject()["counts"].MutableArray()[0].MutableArray()[0] =
      util::JsonValue("not-a-key");
  EXPECT_THROW(table.LoadJson(hostile), util::CheckError);
  EXPECT_TRUE(table.IsSafe(state_, LightOn(), 400))
      << "rejected load clobbered the previous whitelist";
}

TEST_F(SplIntegration, LearnerJsonRoundTripClassifiesIdentically) {
  SafetyPolicyLearner restored(testbed_->home_a(), SplConfig{});
  restored.LoadJsonString(learner_->ToJsonString());
  ASSERT_TRUE(restored.learned());
  EXPECT_EQ(restored.learn_report().episodes_used,
            learner_->learn_report().episodes_used);
  EXPECT_EQ(restored.learn_report().observations,
            learner_->learn_report().observations);
  // Same verdict on every probe — whitelist AND ANN survived bit-for-bit.
  sim::AnomalyGenerator generator(testbed_->home_a(), 2718);
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  for (int i = 0; i < 50; ++i) {
    const auto instance = generator.Generate(state);
    EXPECT_EQ(restored.Classify(state, instance.action, instance.minute),
              learner_->Classify(state, instance.action, instance.minute));
  }
}

TEST_F(SplIntegration, RejectedRestoreLeavesLearnerDenying) {
  // Fail-safe ordering: learned_ drops before anything is touched, so a
  // document that passes the table/filter stages but fails later leaves
  // the learner refusing to classify — the deny path — rather than serving
  // a half-restored policy.
  SafetyPolicyLearner victim(testbed_->home_a(), SplConfig{});
  victim.LoadJsonString(learner_->ToJsonString());
  ASSERT_TRUE(victim.learned());

  util::JsonValue hostile = learner_->ToJson();
  hostile.MutableObject()["stats"].MutableObject()["observations"] =
      util::JsonValue(-3);
  EXPECT_THROW(victim.LoadJson(hostile), util::JsonError);
  EXPECT_FALSE(victim.learned());
  fsm::StateVector state(testbed_->home_a().device_count(), 0);
  EXPECT_THROW(victim.ClassifyMini(state, {0, 0}, 0), std::logic_error);
}

TEST_F(SplIntegration, RestoreRejectsForeignAnnTopology) {
  // A filter document whose output head is not the single benign-score
  // sigmoid is structurally foreign (e.g. a Q-network pasted into an SPL
  // checkpoint): right input width, wrong output width — rejected, and the
  // learner stays in the deny path.
  const FeatureEncoder encoder(testbed_->home_a());
  neural::Network foreign(
      encoder.feature_width(),
      {{4, neural::Activation::kRelu}, {2, neural::Activation::kSigmoid}},
      neural::Loss::kBinaryCrossEntropy,
      std::make_unique<neural::Sgd>(0.01), util::Rng(1));
  util::JsonValue doc = learner_->ToJson();
  doc.MutableObject()["filter"].MutableObject()["network"] =
      neural::ToJson(foreign);
  SafetyPolicyLearner victim(testbed_->home_a(), SplConfig{});
  EXPECT_THROW(victim.LoadJson(doc), std::invalid_argument);
  EXPECT_FALSE(victim.learned());
}

TEST(Verdicts, Names) {
  EXPECT_EQ(VerdictName(Verdict::kSafe), "safe");
  EXPECT_EQ(VerdictName(Verdict::kBenignAnomaly), "benign-anomaly");
  EXPECT_EQ(VerdictName(Verdict::kViolation), "violation");
}

}  // namespace
}  // namespace jarvis::spl
