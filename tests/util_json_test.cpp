#include "util/json.h"

#include <gtest/gtest.h>

namespace jarvis::util {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(JsonValue::Parse("null").type(), JsonValue::Type::kNull);
  EXPECT_TRUE(JsonValue::Parse("true").AsBool());
  EXPECT_FALSE(JsonValue::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25").AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17").AsNumber(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3").AsNumber(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(Json, DumpParsesBack) {
  JsonObject obj;
  obj["name"] = JsonValue("lock");
  obj["watts"] = JsonValue(5.5);
  obj["on"] = JsonValue(true);
  obj["tags"] = JsonValue(JsonArray{JsonValue(1), JsonValue(2)});
  JsonObject nested;
  nested["x"] = JsonValue();
  obj["extra"] = JsonValue(std::move(nested));
  const JsonValue original{std::move(obj)};

  const JsonValue reparsed = JsonValue::Parse(original.Dump());
  EXPECT_EQ(reparsed, original);
}

TEST(Json, EscapesSpecialCharacters) {
  const JsonValue value(std::string("line\nbreak \"quoted\" \\slash\t"));
  const JsonValue reparsed = JsonValue::Parse(value.Dump());
  EXPECT_EQ(reparsed.AsString(), value.AsString());
}

TEST(Json, ControlCharactersEscapedAsUnicode) {
  const std::string raw = "a\x01z";
  const std::string dumped = JsonValue(raw).Dump();
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(JsonValue::Parse(dumped).AsString(), raw);
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  EXPECT_EQ(JsonValue::Parse("\"\\u0041\"").AsString(), "A");
  // 2-byte and 3-byte UTF-8 paths.
  EXPECT_EQ(JsonValue::Parse("\"\\u00e9\"").AsString(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::Parse("\"\\u20ac\"").AsString(), "\xe2\x82\xac");
}

TEST(Json, ParsesNestedDocument) {
  const auto doc = JsonValue::Parse(
      R"({"devices": [{"label": "lock", "states": 4},
                      {"label": "light", "states": 2}],
           "users": 5})");
  EXPECT_EQ(doc.At("users").AsInt(), 5);
  const auto& devices = doc.At("devices").AsArray();
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_EQ(devices[0].At("label").AsString(), "lock");
  EXPECT_EQ(devices[1].At("states").AsInt(), 2);
}

TEST(Json, WhitespaceTolerant) {
  const auto doc = JsonValue::Parse("  {  \"a\" :\n[ 1 ,\t2 ]  }  ");
  EXPECT_EQ(doc.At("a").AsArray().size(), 2u);
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(JsonValue::Parse(""), JsonError);
  EXPECT_THROW(JsonValue::Parse("{"), JsonError);
  EXPECT_THROW(JsonValue::Parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::Parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(JsonValue::Parse("\"unterminated"), JsonError);
  EXPECT_THROW(JsonValue::Parse("tru"), JsonError);
  EXPECT_THROW(JsonValue::Parse("{} extra"), JsonError);
  EXPECT_THROW(JsonValue::Parse("nan"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue number(5.0);
  EXPECT_THROW(number.AsString(), JsonError);
  EXPECT_THROW(number.AsArray(), JsonError);
  EXPECT_THROW(number.AsObject(), JsonError);
  EXPECT_THROW(number.At("k"), JsonError);
  const JsonValue text("x");
  EXPECT_THROW(text.AsNumber(), JsonError);
  EXPECT_THROW(text.AsBool(), JsonError);
}

TEST(Json, MissingKeyThrowsAndFallbacksWork) {
  const auto doc = JsonValue::Parse(R"({"a": 1, "s": "x"})");
  EXPECT_THROW(doc.At("missing"), JsonError);
  EXPECT_DOUBLE_EQ(doc.GetNumber("a", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(doc.GetNumber("missing", -1.0), -1.0);
  EXPECT_EQ(doc.GetString("s", "d"), "x");
  EXPECT_EQ(doc.GetString("missing", "d"), "d");
  // Wrong-typed field also falls back.
  EXPECT_DOUBLE_EQ(doc.GetNumber("s", -1.0), -1.0);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::Parse("[]").AsArray().size(), 0u);
  EXPECT_EQ(JsonValue::Parse("{}").AsObject().size(), 0u);
  EXPECT_EQ(JsonValue(JsonArray{}).Dump(), "[]");
  EXPECT_EQ(JsonValue(JsonObject{}).Dump(), "{}");
}

TEST(Json, IntegersRenderWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue(5.0).Dump(), "5");
  EXPECT_EQ(JsonValue(-3).Dump(), "-3");
  EXPECT_EQ(JsonValue(2.5).Dump(), "2.5");
}

TEST(Json, PrettyPrintRoundTrips) {
  const auto doc =
      JsonValue::Parse(R"({"a": [1, 2, {"b": true}], "c": "text"})");
  const std::string pretty = doc.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(JsonValue::Parse(pretty), doc);
}

TEST(Json, CopyOnWriteMutationDoesNotAliasShares) {
  JsonValue a(JsonArray{JsonValue(1)});
  JsonValue b = a;  // shares the array node
  b.MutableArray().push_back(JsonValue(2));
  EXPECT_EQ(a.AsArray().size(), 1u);
  EXPECT_EQ(b.AsArray().size(), 2u);
}

}  // namespace
}  // namespace jarvis::util
