#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace jarvis::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    (void)c.NextU64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.NextU64(), c2.NextU64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextIntRespectsBoundsInclusive) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values in [-3,3] should appear";
}

TEST(Rng, NextIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(Rng, NextIntRejectsInvertedRange) {
  Rng rng(4);
  EXPECT_THROW(rng.NextInt(2, 1), std::invalid_argument);
}

TEST(Rng, NextIndexCoversRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextIndex(10)];
  for (int count : counts) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.15);
  }
}

TEST(Rng, NextIndexZeroThrows) {
  Rng rng(6);
  EXPECT_THROW(rng.NextIndex(0), std::invalid_argument);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(7);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  EXPECT_FALSE(rng.NextBool(-1.0));
  EXPECT_TRUE(rng.NextBool(2.0));
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedSamplingMatchesWeights) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedRejectsDegenerate) {
  Rng rng(12);
  EXPECT_THROW(rng.NextWeighted({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.NextWeighted({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.NextExponential(0.0), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(17);
  const auto sample = rng.SampleIndices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t index : sample) EXPECT_LT(index, 100u);
  EXPECT_THROW(rng.SampleIndices(5, 6), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.Fork();
  // Child diverges from parent.
  EXPECT_NE(parent.NextU64(), child.NextU64());
  // And forking is deterministic given the parent state.
  Rng parent2(18);
  Rng child2 = parent2.Fork();
  Rng parent3(18);
  Rng child3 = parent3.Fork();
  EXPECT_EQ(child2.NextU64(), child3.NextU64());
}

TEST(DeriveSeed, MatchesSplitMix64Sequence) {
  // DeriveSeed(root, k) must be the (k+1)-th output of the SplitMix64
  // stream rooted at `root` — the same generator that seeds Rng itself.
  // Reference values computed from the SplitMix64 reference implementation
  // (Vigna), gamma = 0x9e3779b97f4a7c15.
  EXPECT_EQ(DeriveSeed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(DeriveSeed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(DeriveSeed(0, 2), 0x06c45d188009454fULL);
}

TEST(DeriveSeed, DeterministicAndStreamSeparated) {
  EXPECT_EQ(DeriveSeed(42, 7), DeriveSeed(42, 7));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(DeriveSeed(1, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across streams
  // Nearby roots must not alias nearby streams into identical generators.
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_NE(DeriveSeed(1, 1), DeriveSeed(2, 0));
}

TEST(DeriveSeed, DecorrelatedStreams) {
  // Consecutive tenant indices yield Rng streams with no obvious lockstep:
  // the first outputs of 100 derived streams are all distinct.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t tenant = 0; tenant < 100; ++tenant) {
    Rng rng(DeriveSeed(99, tenant));
    firsts.insert(rng.NextU64());
  }
  EXPECT_EQ(firsts.size(), 100u);
}

// Property sweep: many seeds produce values that stay within bounds and
// differ across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformBoundsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextUniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1337ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace jarvis::util
