#include "fsm/device.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include "fsm/device_library.h"

namespace jarvis::fsm {
namespace {

Device MakeToggle() {
  return Device::Builder(0, "toggle", DeviceClass::kLighting)
      .AddState("off", 0.0)
      .AddState("on", 10.0)
      .AddAction("power_on")
      .AddAction("power_off")
      .SetTransition("off", "power_on", "on")
      .SetTransition("on", "power_off", "off")
      .SetDefaultDisUtility(0.5)
      .Build();
}

TEST(Device, BuilderBasics) {
  const Device device = MakeToggle();
  EXPECT_EQ(device.id(), 0);
  EXPECT_EQ(device.label(), "toggle");
  EXPECT_EQ(device.state_count(), 2);
  EXPECT_EQ(device.action_count(), 2);
  EXPECT_EQ(device.state_name(1), "on");
  EXPECT_EQ(device.action_name(0), "power_on");
}

TEST(Device, TransitionSemantics) {
  const Device device = MakeToggle();
  const StateIndex off = *device.FindState("off");
  const StateIndex on = *device.FindState("on");
  const ActionIndex power_on = *device.FindAction("power_on");
  const ActionIndex power_off = *device.FindAction("power_off");
  EXPECT_EQ(device.Transition(off, power_on), on);
  EXPECT_EQ(device.Transition(on, power_off), off);
  // Undeclared pairs have no effect.
  EXPECT_EQ(device.Transition(on, power_on), on);
  EXPECT_EQ(device.Transition(off, power_off), off);
  // kNoAction is identity.
  EXPECT_EQ(device.Transition(on, kNoAction), on);
  EXPECT_TRUE(device.ActionHasEffect(off, power_on));
  EXPECT_FALSE(device.ActionHasEffect(on, power_on));
}

TEST(Device, TransitionBoundsChecked) {
  const Device device = MakeToggle();
  EXPECT_THROW(device.Transition(-1, 0), util::CheckError);
  EXPECT_THROW(device.Transition(2, 0), util::CheckError);
  EXPECT_THROW(device.Transition(0, 5), util::CheckError);
  EXPECT_THROW(device.state_name(9), util::CheckError);
  EXPECT_THROW(device.action_name(-1), util::CheckError);
}

TEST(Device, LookupsReturnNulloptForUnknown) {
  const Device device = MakeToggle();
  EXPECT_FALSE(device.FindState("nope").has_value());
  EXPECT_FALSE(device.FindAction("nope").has_value());
}

TEST(Device, DisUtilityDefaultsAndOverrides) {
  Device device = Device::Builder(1, "x", DeviceClass::kHvac)
                      .AddState("a")
                      .AddState("b")
                      .AddAction("go")
                      .SetTransition("a", "go", "b")
                      .SetDefaultDisUtility(0.2)
                      .SetDisUtility("b", "go", 0.9)
                      .Build();
  EXPECT_DOUBLE_EQ(device.DisUtility(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(device.DisUtility(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(device.DisUtility(0, kNoAction), 0.0);
  EXPECT_DOUBLE_EQ(device.default_dis_utility(), 0.2);
}

TEST(Device, PowerDrawPerState) {
  const Device device = MakeToggle();
  EXPECT_DOUBLE_EQ(device.PowerDraw(0), 0.0);
  EXPECT_DOUBLE_EQ(device.PowerDraw(1), 10.0);
  EXPECT_THROW(device.PowerDraw(2), util::CheckError);
}

TEST(Device, BuilderRejectsInvalidSpecs) {
  EXPECT_THROW(Device::Builder(0, "x", DeviceClass::kSensor)
                   .AddState("a")
                   .AddState("a"),
               util::CheckError);
  EXPECT_THROW(Device::Builder(0, "x", DeviceClass::kSensor)
                   .AddAction("a")
                   .AddAction("a"),
               util::CheckError);
  EXPECT_THROW(Device::Builder(0, "x", DeviceClass::kSensor)
                   .AddState("a")
                   .Build(),
               util::CheckError);  // no actions
  EXPECT_THROW(Device::Builder(0, "x", DeviceClass::kSensor)
                   .AddAction("a")
                   .Build(),
               util::CheckError);  // no states
  EXPECT_THROW(Device::Builder(0, "x", DeviceClass::kSensor)
                   .AddState("a")
                   .AddAction("go")
                   .SetTransition("a", "go", "missing")
                   .Build(),
               util::CheckError);
  EXPECT_THROW(Device::Builder(0, "x", DeviceClass::kSensor)
                   .SetDefaultDisUtility(1.5),
               util::CheckError);
}

// --- Device library: every catalog device satisfies shared invariants. ----

class DeviceLibrarySuite : public ::testing::TestWithParam<Device> {};

TEST_P(DeviceLibrarySuite, TransitionsAreTotalAndClosed) {
  const Device& device = GetParam();
  for (StateIndex s = 0; s < device.state_count(); ++s) {
    for (ActionIndex a = 0; a < device.action_count(); ++a) {
      const StateIndex next = device.Transition(s, a);
      EXPECT_GE(next, 0);
      EXPECT_LT(next, device.state_count());
    }
  }
}

TEST_P(DeviceLibrarySuite, DisUtilityNormalized) {
  const Device& device = GetParam();
  for (StateIndex s = 0; s < device.state_count(); ++s) {
    for (ActionIndex a = 0; a < device.action_count(); ++a) {
      EXPECT_GE(device.DisUtility(s, a), 0.0);
      EXPECT_LE(device.DisUtility(s, a), 1.0);
    }
  }
}

TEST_P(DeviceLibrarySuite, PowerNonNegativeAndOffStatesDrawNothing) {
  const Device& device = GetParam();
  for (StateIndex s = 0; s < device.state_count(); ++s) {
    EXPECT_GE(device.PowerDraw(s), 0.0);
    if (device.state_name(s) == "off") {
      EXPECT_DOUBLE_EQ(device.PowerDraw(s), 0.0);
    }
  }
}

TEST_P(DeviceLibrarySuite, PowerCyclableDevicesRecover) {
  const Device& device = GetParam();
  const auto off = device.FindState("off");
  const auto power_on = device.FindAction("power_on");
  if (!off || !power_on) GTEST_SKIP() << "device has no off/power_on";
  // Power-on from off must leave the off state.
  EXPECT_NE(device.Transition(*off, *power_on), *off);
}

INSTANTIATE_TEST_SUITE_P(
    FullCatalog, DeviceLibrarySuite, ::testing::ValuesIn(LargeHomeDevices()),
    [](const ::testing::TestParamInfo<Device>& info) {
      return info.param.label();
    });

TEST(DeviceLibrary, TableOneShapes) {
  const auto devices = ExampleHomeDevices();
  ASSERT_EQ(devices.size(), 5u);
  EXPECT_EQ(devices[0].label(), "lock");
  EXPECT_EQ(devices[0].state_count(), 4);  // Table I: 4 lock states
  EXPECT_EQ(devices[0].action_count(), 4);
  EXPECT_EQ(devices[1].label(), "door_sensor");
  EXPECT_EQ(devices[2].label(), "light");
  EXPECT_EQ(devices[2].state_count(), 2);
  EXPECT_EQ(devices[3].label(), "thermostat");
  EXPECT_EQ(devices[3].action_count(), 4);
  EXPECT_EQ(devices[4].label(), "temp_sensor");
}

TEST(DeviceLibrary, FullHomeHasElevenDevicesWithDenseIds) {
  const auto devices = FullHomeDevices();
  ASSERT_EQ(devices.size(), 11u);  // k = 11 (Section VI-D)
  for (std::size_t i = 0; i < devices.size(); ++i) {
    EXPECT_EQ(devices[i].id(), static_cast<DeviceId>(i));
  }
}

TEST(DeviceLibrary, SecurityDevicesHaveHighDisUtility) {
  // Section V-A-4: locks and sensors are high dis-utility; HVAC and white
  // goods low.
  const auto devices = FullHomeDevices();
  const auto& lock = devices[0];
  const auto& thermostat = devices[3];
  const auto& washer = devices[8];
  EXPECT_GT(lock.default_dis_utility(), 0.7);
  EXPECT_LT(thermostat.default_dis_utility(), 0.4);
  EXPECT_LT(washer.default_dis_utility(), 0.4);
}

TEST(DeviceLibrary, LockSupportsLeaveAndArriveCycle) {
  const Device lock = MakeSmartLock(0);
  const StateIndex locked_outside = *lock.FindState("locked_outside");
  const StateIndex unlocked = *lock.FindState("unlocked");
  const ActionIndex do_lock = *lock.FindAction("lock");
  const ActionIndex do_unlock = *lock.FindAction("unlock");
  // Arrive: locked_outside -> unlocked; leave: unlocked -> locked_outside.
  EXPECT_EQ(lock.Transition(locked_outside, do_unlock), unlocked);
  EXPECT_EQ(lock.Transition(unlocked, do_lock), locked_outside);
  // locked_inside can both unlock and re-lock to outside.
  const StateIndex locked_inside = *lock.FindState("locked_inside");
  EXPECT_EQ(lock.Transition(locked_inside, do_unlock), unlocked);
  EXPECT_EQ(lock.Transition(locked_inside, do_lock), locked_outside);
}

}  // namespace
}  // namespace jarvis::fsm
