#include "neural/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.h"

namespace jarvis::neural {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t(1, 2), 1.5);
  t(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(t.At(0, 1), 7.0);
  EXPECT_THROW(t.At(2, 0), util::CheckError);
  EXPECT_THROW(t.At(0, 3), util::CheckError);
}

TEST(Tensor, InitializerListAndRaggedRejected) {
  Tensor t{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(t(1, 0), 3.0);
  EXPECT_THROW((Tensor{{1.0}, {2.0, 3.0}}), util::CheckError);
}

TEST(Tensor, RowConstructorAndAccessors) {
  const Tensor r = Tensor::Row({1.0, 2.0, 3.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  EXPECT_EQ(r.RowVector(0), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_THROW(r.RowVector(1), util::CheckError);
}

TEST(Tensor, SetRowValidatesWidth) {
  Tensor t(2, 2);
  t.SetRow(1, {5.0, 6.0});
  EXPECT_DOUBLE_EQ(t(1, 1), 6.0);
  EXPECT_THROW(t.SetRow(0, {1.0}), util::CheckError);
  EXPECT_THROW(t.SetRow(2, {1.0, 2.0}), util::CheckError);
}

TEST(Tensor, ElementwiseOps) {
  const Tensor a{{1.0, 2.0}, {3.0, 4.0}};
  const Tensor b{{10.0, 20.0}, {30.0, 40.0}};
  const Tensor sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  const Tensor diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
  const Tensor scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Tensor had = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(had(0, 1), 40.0);
  EXPECT_THROW(a + Tensor(1, 2), util::CheckError);
  EXPECT_THROW(a.Hadamard(Tensor(2, 3)), util::CheckError);
}

TEST(Tensor, MatMul) {
  const Tensor a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};   // 2x3
  const Tensor b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};  // 3x2
  const Tensor c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
  EXPECT_THROW(a.MatMul(a), util::CheckError);
}

// Regression for the zero-operand shortcut MatMul used to take: skipping
// the multiply when lhs == 0.0 is NOT an identity under IEEE 754 —
// 0 * inf and 0 * NaN are NaN, so a zero weight silently swallowed a
// non-finite activation instead of propagating it. Divergence detection
// (ReplayBuffer::PurgePoisoned, DqnAgent::diverged) depends on non-finite
// values surfacing, not being masked by sparsity.
TEST(Tensor, MatMulPropagatesNanAndInfThroughZeroOperands) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Tensor zeros{{0.0, 0.0}};  // 1x2, all-zero lhs row
  const Tensor rhs_inf{{inf}, {1.0}};
  const Tensor rhs_nan{{nan}, {1.0}};
  // 0*inf + 0*1 = NaN + 0 = NaN; the old skip produced 0.0.
  EXPECT_TRUE(std::isnan(zeros.MatMul(rhs_inf)(0, 0)));
  EXPECT_TRUE(std::isnan(zeros.MatMul(rhs_nan)(0, 0)));
  // Zero on the right operand likewise: inf * 0 = NaN.
  const Tensor lhs_inf{{inf, 1.0}};
  const Tensor rhs_zero{{0.0}, {0.0}};
  EXPECT_TRUE(std::isnan(lhs_inf.MatMul(rhs_zero)(0, 0)));
  // Finite inputs are untouched by the fix: plain sparse product.
  const Tensor finite{{0.0, 2.0}};
  const Tensor dense{{5.0}, {7.0}};
  EXPECT_DOUBLE_EQ(finite.MatMul(dense)(0, 0), 14.0);
}

TEST(Tensor, MatMulIdentity) {
  const Tensor m{{1.0, 2.0}, {3.0, 4.0}};
  const Tensor identity{{1.0, 0.0}, {0.0, 1.0}};
  const Tensor product = m.MatMul(identity);
  EXPECT_DOUBLE_EQ(product(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(product(1, 1), 4.0);
}

TEST(Tensor, TransposeInvolution) {
  const Tensor a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Tensor at = a.Transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  const Tensor back = at.Transposed();
  EXPECT_TRUE(back.SameShape(a));
  EXPECT_EQ(back.data(), a.data());
}

TEST(Tensor, MapAndFill) {
  Tensor t{{1.0, -2.0}};
  const Tensor mapped = t.Map([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(mapped(0, 1), 4.0);
  t.MapInPlace([](double x) { return x + 1.0; });
  EXPECT_DOUBLE_EQ(t(0, 1), -1.0);
  t.Fill(9.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 9.0);
}

TEST(Tensor, BroadcastAndReduce) {
  const Tensor batch{{1.0, 2.0}, {3.0, 4.0}};
  const Tensor bias = Tensor::Row({10.0, 20.0});
  const Tensor shifted = batch.AddRowBroadcast(bias);
  EXPECT_DOUBLE_EQ(shifted(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(shifted(1, 1), 24.0);
  EXPECT_THROW(batch.AddRowBroadcast(Tensor(1, 3)), util::CheckError);

  const Tensor colsum = batch.SumRows();
  EXPECT_EQ(colsum.rows(), 1u);
  EXPECT_DOUBLE_EQ(colsum(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(colsum(0, 1), 6.0);
}

TEST(Tensor, Reductions) {
  const Tensor t{{1.0, 5.0}, {-2.0, 3.0}};
  EXPECT_DOUBLE_EQ(t.SumAll(), 7.0);
  EXPECT_DOUBLE_EQ(t.MaxAll(), 5.0);
  EXPECT_EQ(t.ArgMaxRow(0), 1u);
  EXPECT_EQ(t.ArgMaxRow(1), 1u);
  EXPECT_THROW(t.ArgMaxRow(2), util::CheckError);
  EXPECT_THROW(Tensor().MaxAll(), util::CheckError);
}

// Contract-violation coverage: every misuse below must fail a JARVIS_CHECK
// (or, for At(), a JARVIS_DCHECK — active here because the test binaries
// compile with JARVIS_DCHECK_ENABLED=1).
TEST(TensorContract, OutOfBoundsAccessReportsIndexAndShape) {
  const Tensor t(2, 3);
  try {
    (void)t.At(5, 1);
    FAIL() << "At did not throw";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Tensor::At(5, 1)"), std::string::npos) << what;
    EXPECT_NE(what.find("2x3"), std::string::npos) << what;
  }
}

TEST(TensorContract, MutableAccessAlsoChecked) {
  Tensor t(1, 1);
  EXPECT_THROW(t.At(1, 0) = 3.0, util::CheckError);
  EXPECT_THROW(t(0, 1) = 3.0, util::CheckError);
}

TEST(TensorContract, ShapeMismatchReportsBothShapes) {
  const Tensor a(2, 2);
  const Tensor b(3, 2);
  try {
    (void)(a + b);
    FAIL() << "operator+ did not throw";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[2x2]"), std::string::npos) << what;
    EXPECT_NE(what.find("[3x2]"), std::string::npos) << what;
  }
  Tensor c(2, 2);
  EXPECT_THROW(c += b, util::CheckError);
  EXPECT_THROW(c -= b, util::CheckError);
}

TEST(TensorContract, MatMulInnerDimensionMismatch) {
  const Tensor a(2, 3);
  const Tensor b(4, 2);
  EXPECT_THROW(a.MatMul(b), util::CheckError);
}

TEST(TensorContract, EmptyTensorReductions) {
  EXPECT_THROW(Tensor().MaxAll(), util::CheckError);
  EXPECT_THROW(Tensor().ArgMaxRow(0), util::CheckError);
  EXPECT_DOUBLE_EQ(Tensor().SumAll(), 0.0);  // sum of nothing is defined
}

TEST(Tensor, GenerateUsesCallback) {
  int counter = 0;
  const Tensor t = Tensor::Generate(2, 2, [&] { return ++counter; });
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 4.0);
}

}  // namespace
}  // namespace jarvis::neural
