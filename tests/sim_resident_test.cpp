#include "sim/resident.h"

#include <gtest/gtest.h>

#include "fsm/device_library.h"
#include "sim/smartstar.h"
#include "sim/testbed.h"

namespace jarvis::sim {
namespace {

class ResidentFixture : public ::testing::Test {
 protected:
  ResidentFixture() : home_(fsm::BuildFullHome()) {}

  DayTrace SimulatePerfectDay(int day) {
    ResidentSimulator resident(home_, ThermalConfig{}, 3,
                               BehaviorConfig{0.0, 1});
    const ScenarioGenerator generator({}, {}, {}, 5);
    return resident.SimulateDay(generator.Generate(day),
                                resident.OvernightState(), 21.0);
  }

  fsm::EnvironmentFsm home_;
};

TEST_F(ResidentFixture, EpisodeIsCompleteMinuteResolution) {
  const DayTrace trace = SimulatePerfectDay(1);
  EXPECT_TRUE(trace.episode.IsComplete());
  EXPECT_EQ(trace.episode.size(),
            static_cast<std::size_t>(util::kMinutesPerDay));
  EXPECT_EQ(trace.indoor_c.size(),
            static_cast<std::size_t>(util::kMinutesPerDay));
}

TEST_F(ResidentFixture, OvernightStateSemantics) {
  ResidentSimulator resident(home_, ThermalConfig{}, 3);
  const auto state = resident.OvernightState();
  const auto& lock = home_.device(home_.DeviceIdByLabel("lock"));
  EXPECT_EQ(state[static_cast<std::size_t>(lock.id())],
            *lock.FindState("locked_outside"));
  const auto& light = home_.device(home_.DeviceIdByLabel("light"));
  EXPECT_EQ(state[static_cast<std::size_t>(light.id())],
            *light.FindState("off"));
}

TEST_F(ResidentFixture, DepartureSequenceLocksAndShutsDown) {
  const DayTrace trace = SimulatePerfectDay(1);  // day 1 is a weekday
  ASSERT_FALSE(trace.scenario.departure_minutes.empty());
  const int departure = trace.scenario.departure_minutes[0];
  const auto lock_id =
      static_cast<std::size_t>(home_.DeviceIdByLabel("lock"));
  const auto thermostat_id =
      static_cast<std::size_t>(home_.DeviceIdByLabel("thermostat"));

  // After the departure sequence the door is locked from outside and (in a
  // perfect-behavior run) the thermostat is off.
  const auto& after =
      trace.episode.steps()[static_cast<std::size_t>(departure) + 2];
  EXPECT_EQ(after.state[lock_id],
            *home_.device(0).FindState("locked_outside"));
  EXPECT_EQ(after.state[thermostat_id],
            *home_.device(3).FindState("off"));
}

TEST_F(ResidentFixture, ArrivalUnlocksViaAuthUserBlip) {
  const DayTrace trace = SimulatePerfectDay(1);
  ASSERT_FALSE(trace.scenario.arrival_minutes.empty());
  const int arrival = trace.scenario.arrival_minutes[0];
  const auto door_id =
      static_cast<std::size_t>(home_.DeviceIdByLabel("door_sensor"));
  const auto lock_id = static_cast<std::size_t>(home_.DeviceIdByLabel("lock"));

  const auto& at = trace.episode.steps()[static_cast<std::size_t>(arrival)];
  EXPECT_EQ(at.state[door_id], *home_.device(1).FindState("auth_user"));
  EXPECT_EQ(at.action[lock_id], *home_.device(0).FindAction("unlock"));
  // One minute later the sensor has relaxed to sensing and the door is
  // unlocked.
  const auto& after =
      trace.episode.steps()[static_cast<std::size_t>(arrival) + 1];
  EXPECT_EQ(after.state[lock_id], *home_.device(0).FindState("unlocked"));
}

TEST_F(ResidentFixture, NoActionsWhileEveryoneAway) {
  const DayTrace trace = SimulatePerfectDay(1);
  const int departure = trace.scenario.departure_minutes[0];
  const int arrival = trace.scenario.arrival_minutes[0];
  // Between (departure + shutdown) and arrival, appliance demand actions
  // do not fire (fridge/oven/coffee are only used when home and awake).
  for (int m = departure + 3; m < arrival; ++m) {
    const auto& step = trace.episode.steps()[static_cast<std::size_t>(m)];
    for (std::size_t d = 0; d < home_.device_count(); ++d) {
      EXPECT_EQ(step.action[d], fsm::kNoAction)
          << "device " << home_.devices()[d].label() << " acted at minute "
          << m << " while away";
    }
  }
}

TEST_F(ResidentFixture, DemandsExecuteAtPreferredTimes) {
  const DayTrace trace = SimulatePerfectDay(1);
  const auto coffee_id =
      static_cast<std::size_t>(home_.DeviceIdByLabel("coffee_maker"));
  bool brewed = false;
  for (const auto& step : trace.episode.steps()) {
    if (step.action[coffee_id] != fsm::kNoAction &&
        home_.device(10).action_name(step.action[coffee_id]) == "brew") {
      brewed = true;
      // Coffee brews near wake-up.
      EXPECT_NEAR(step.time.minute_of_day(), trace.scenario.wake_minute + 10,
                  2);
    }
  }
  EXPECT_TRUE(brewed);
}

TEST_F(ResidentFixture, MetricsArePhysicallyPlausible) {
  const DayTrace trace = SimulatePerfectDay(1);
  EXPECT_GT(trace.metrics.energy_kwh, 1.0);
  EXPECT_LT(trace.metrics.energy_kwh, 200.0);
  EXPECT_GT(trace.metrics.cost_usd, 0.0);
  EXPECT_GE(trace.metrics.comfort_error_c_min, 0.0);
  EXPECT_LE(trace.metrics.comfort_error_c_min,
            trace.metrics.comfort_error_all_c_min + 1e-9);
}

TEST_F(ResidentFixture, ForgetfulnessIncreasesEnergyOnAverage) {
  // Hold the thermostat reaction time fixed so the *only* difference is
  // whether the leave-home shutdown fires; forgetting then strictly wastes
  // energy on days where devices were running at departure.
  const ScenarioGenerator generator({}, {}, {}, 5);
  double tidy_total = 0.0, forgetful_total = 0.0;
  ResidentSimulator tidy(home_, ThermalConfig{}, 3, BehaviorConfig{0.0, 25});
  ResidentSimulator forgetful(home_, ThermalConfig{}, 3,
                              BehaviorConfig{1.0, 25});
  for (int day = 0; day < 10; ++day) {
    const auto scenario = generator.Generate(day);
    tidy_total += tidy.SimulateDay(scenario, tidy.OvernightState(), 21.0)
                      .metrics.energy_kwh;
    forgetful_total +=
        forgetful.SimulateDay(scenario, forgetful.OvernightState(), 21.0)
            .metrics.energy_kwh;
  }
  EXPECT_GT(forgetful_total, tidy_total);
}

TEST_F(ResidentFixture, MultiDayCarriesStateAcrossMidnight) {
  ResidentSimulator resident(home_, ThermalConfig{}, 3);
  const ScenarioGenerator generator({}, {}, {}, 5);
  const auto traces = resident.SimulateDays(generator, 0, 3);
  ASSERT_EQ(traces.size(), 3u);
  for (std::size_t d = 1; d < traces.size(); ++d) {
    EXPECT_EQ(traces[d].episode.initial_state(),
              traces[d - 1].episode.FinalState(home_));
    EXPECT_EQ(traces[d].scenario.day, static_cast<int>(d));
  }
}

TEST_F(ResidentFixture, EventsCoverAllStateChanges) {
  const DayTrace trace = SimulatePerfectDay(2);
  EXPECT_GT(trace.events.size(), 10u);
  // Every command event names a real device and action.
  for (const auto& event : trace.events) {
    const auto& device = home_.DeviceByLabel(event.device_label);
    EXPECT_TRUE(device.FindState(event.attribute_value).has_value())
        << event.attribute_value;
    if (!event.command.empty()) {
      EXPECT_TRUE(device.FindAction(event.command).has_value());
    }
  }
}

TEST(SmartStar, DaysAreDeterministicAndSeasonal) {
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const SmartStarDataset data(home, 31);
  const DayTrace a = data.Day(42);
  const DayTrace b = data.Day(42);
  EXPECT_EQ(a.metrics.energy_kwh, b.metrics.energy_kwh);
  // New England winter (day 42 = Feb) needs more energy than a mild fall
  // day; compare heating demand via outdoor temperature.
  const DayTrace fall = data.Day(280);
  EXPECT_LT(a.scenario.outdoor_c[720], fall.scenario.outdoor_c[720]);
}

TEST(SmartStar, SampleDaysDistinctAndInRange) {
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const SmartStarDataset data(home, 31);
  const auto days = data.SampleDays(30, 7);
  EXPECT_EQ(days.size(), 30u);
  std::set<int> unique(days.begin(), days.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int day : days) {
    EXPECT_GE(day, 0);
    EXPECT_LT(day, 365);
  }
  // Deterministic per (seed, sample_seed).
  EXPECT_EQ(data.SampleDays(30, 7), days);
  EXPECT_NE(data.SampleDays(30, 8), days);
}

TEST(Testbed, FigureFourTopology) {
  TestbedConfig config;
  config.benign_anomaly_samples = 500;
  const Testbed testbed(config);
  EXPECT_EQ(testbed.home_a().device_count(), 11u);
  EXPECT_EQ(testbed.home_b().device_count(), 11u);
  EXPECT_EQ(testbed.home_a().auth().users().size(), 5u);
  const auto episodes = testbed.HomeALearningEpisodes();
  EXPECT_EQ(episodes.size(), 14u);  // L: 14 days spread across the year
  for (const auto& episode : episodes) EXPECT_TRUE(episode.IsComplete());
}

TEST(Testbed, LearningDaysSpanSeasons) {
  TestbedConfig config;
  config.benign_anomaly_samples = 500;
  const Testbed testbed(config);
  const auto traces = testbed.HomeALearningTraces();
  // Both heating-dominant and cooling-dominant days must appear so P_safe
  // covers seasonal thermostat behavior.
  bool cold_day = false, warm_day = false;
  for (const auto& trace : traces) {
    const double noon = trace.scenario.outdoor_c[720];
    if (noon < 10.0) cold_day = true;
    if (noon > 22.0) warm_day = true;
  }
  EXPECT_TRUE(cold_day);
  EXPECT_TRUE(warm_day);
}

}  // namespace
}  // namespace jarvis::sim
