#include "rl/replay.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <limits>
#include <set>
#include <string>

namespace jarvis::rl {
namespace {

Experience MakeExperience(double reward) {
  Experience experience;
  experience.features = {reward};
  experience.reward = reward;
  experience.next_features = {reward + 1.0};
  experience.next_mask = {true};
  return experience;
}

TEST(ReplayBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(ReplayBuffer(0), util::CheckError);
}

TEST(ReplayBuffer, FillsThenWrapsAsRing) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 3; ++i) buffer.Add(MakeExperience(i));
  EXPECT_EQ(buffer.size(), 3u);
  // Adding two more evicts the oldest two.
  buffer.Add(MakeExperience(3));
  buffer.Add(MakeExperience(4));
  EXPECT_EQ(buffer.size(), 3u);

  util::Rng rng(1);
  std::set<double> rewards;
  for (int i = 0; i < 200; ++i) {
    for (std::size_t index : buffer.Sample(3, rng)) {
      rewards.insert(buffer.At(index).reward);
    }
  }
  EXPECT_EQ(rewards.count(0.0), 0u) << "evicted entry sampled";
  EXPECT_EQ(rewards.count(1.0), 0u);
  EXPECT_TRUE(rewards.count(2.0));
  EXPECT_TRUE(rewards.count(3.0));
  EXPECT_TRUE(rewards.count(4.0));
}

TEST(ReplayBuffer, CanSampleGate) {
  ReplayBuffer buffer(10);
  EXPECT_FALSE(buffer.CanSample(1));
  util::Rng rng(2);
  EXPECT_THROW(buffer.Sample(1, rng), util::CheckError);
  buffer.Add(MakeExperience(0));
  EXPECT_TRUE(buffer.CanSample(1));
  EXPECT_FALSE(buffer.CanSample(2));
}

TEST(ReplayBuffer, SampleIsUniformish) {
  ReplayBuffer buffer(4);
  for (int i = 0; i < 4; ++i) buffer.Add(MakeExperience(i));
  util::Rng rng(3);
  std::vector<int> counts(4, 0);
  const int draws = 40000;
  for (int i = 0; i < draws / 4; ++i) {
    for (std::size_t index : buffer.Sample(4, rng)) {
      ++counts[static_cast<int>(buffer.At(index).reward)];
    }
  }
  for (int count : counts) EXPECT_NEAR(count, draws / 4, draws / 4 * 0.1);
}

TEST(ReplayBuffer, ClearEmpties) {
  ReplayBuffer buffer(4);
  buffer.Add(MakeExperience(1));
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.CanSample(1));
  // Refill works after clear.
  buffer.Add(MakeExperience(2));
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(ReplayBuffer, StoresFullExperienceFields) {
  ReplayBuffer buffer(2);
  Experience experience;
  experience.features = {1.0, 2.0};
  experience.taken_slots = {3, 5};
  experience.reward = 0.7;
  experience.next_features = {4.0};
  experience.next_mask = {true, false};
  experience.done = true;
  buffer.Add(experience);
  util::Rng rng(4);
  const Experience& stored = buffer.At(buffer.Sample(1, rng)[0]);
  EXPECT_EQ(stored.features, experience.features);
  EXPECT_EQ(stored.taken_slots, experience.taken_slots);
  EXPECT_DOUBLE_EQ(stored.reward, 0.7);
  EXPECT_EQ(stored.next_mask, experience.next_mask);
  EXPECT_TRUE(stored.done);
}

TEST(ReplayBuffer, PurgePoisonedDropsNonFiniteExperiences) {
  ReplayBuffer buffer(10);
  buffer.Add(MakeExperience(1.0));
  buffer.Add(MakeExperience(std::numeric_limits<double>::infinity()));
  buffer.Add(MakeExperience(2.0));
  Experience nan_features = MakeExperience(3.0);
  nan_features.features = {std::numeric_limits<double>::quiet_NaN()};
  buffer.Add(nan_features);
  buffer.Add(MakeExperience(2e9));  // absurd magnitude counts as poisoned

  EXPECT_EQ(buffer.PurgePoisoned(), 3u);
  EXPECT_EQ(buffer.size(), 2u);
  util::Rng rng(5);
  for (std::size_t index : buffer.Sample(2, rng)) {
    const double reward = buffer.At(index).reward;
    EXPECT_TRUE(reward == 1.0 || reward == 2.0);
  }
  // The ring stays consistent: refilling past capacity still works.
  for (int i = 0; i < 12; ++i) buffer.Add(MakeExperience(i));
  EXPECT_EQ(buffer.size(), 10u);
  EXPECT_EQ(buffer.PurgePoisoned(), 0u);
}

// The bug the index API fixes: the old Sample() returned raw
// `const Experience*` into the ring storage, which PurgePoisoned()'s
// erase/compact and Add()'s slot overwrite invalidated — a use-after-shrink
// that ASan flags and release builds silently misread. Indices make the
// staleness *detectable*: At() bounds-checks every access, so an index that
// outlived a shrink throws instead of dereferencing freed or reused memory.
// (Run under the asan preset this is also a direct use-after-free probe of
// the underlying storage.)
TEST(ReplayBuffer, SampledIndicesOutliveMutationsDetectably) {
  ReplayBuffer buffer(8);
  buffer.Add(MakeExperience(1.0));
  buffer.Add(MakeExperience(std::numeric_limits<double>::quiet_NaN()));
  util::Rng rng(6);
  const std::vector<std::size_t> sampled = buffer.Sample(2, rng);
  // Purge compacts the buffer down to one element: any sampled index >= 1
  // is now stale and must throw rather than alias freed storage.
  ASSERT_EQ(buffer.PurgePoisoned(), 1u);
  ASSERT_EQ(buffer.size(), 1u);
  for (std::size_t index : sampled) {
    if (index >= buffer.size()) {
      EXPECT_THROW(buffer.At(index), util::CheckError);
    } else {
      // An in-range index stays accessible, though it may now name a
      // different (compacted) experience — the documented contract.
      EXPECT_NO_THROW(buffer.At(index));
    }
  }
  EXPECT_THROW(buffer.At(buffer.size()), util::CheckError);

  // SampleInto reuses the caller's vector and draws identically to
  // Sample(): same rng seed, same indices.
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  std::vector<std::size_t> via_into;
  via_into.assign(5, 999);  // stale content must be cleared
  buffer.Add(MakeExperience(2.0));
  buffer.SampleInto(2, rng_a, via_into);
  EXPECT_EQ(via_into, buffer.Sample(2, rng_b));
}

TEST(ReplayBuffer, JsonRoundTripPreservesRingOrderAfterWrap) {
  ReplayBuffer original(3);
  for (int i = 0; i < 5; ++i) original.Add(MakeExperience(i));  // wraps twice

  const util::JsonValue doc = original.ToJson();
  // Oldest-first export regardless of where the ring cursor sits.
  ASSERT_EQ(doc.AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.AsArray()[0].At("reward").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(doc.AsArray()[2].At("reward").AsNumber(), 4.0);

  ReplayBuffer restored(3);
  restored.LoadJson(doc, /*feature_width=*/1, /*slot_count=*/1);
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.ToJson().Dump(), doc.Dump());

  // The restored ring must also *overwrite* in the same order: the next Add
  // evicts reward 2.0 from both buffers, even though their internal cursors
  // started from different histories.
  original.Add(MakeExperience(5));
  restored.Add(MakeExperience(5));
  EXPECT_EQ(restored.ToJson().Dump(), original.ToJson().Dump());
  EXPECT_DOUBLE_EQ(restored.ToJson().AsArray()[0].At("reward").AsNumber(),
                   3.0);
}

TEST(ReplayBuffer, LoadJsonRejectsMoreExperiencesThanCapacity) {
  ReplayBuffer big(3);
  for (int i = 0; i < 3; ++i) big.Add(MakeExperience(i));
  ReplayBuffer small(2);
  EXPECT_THROW(small.LoadJson(big.ToJson(), 1, 1), util::JsonError);
  EXPECT_EQ(small.size(), 0u);
}

TEST(ReplayBuffer, LoadJsonValidatesWidthsSlotsAndFiniteness) {
  ReplayBuffer source(4);
  source.Add(MakeExperience(1.0));
  const util::JsonValue good = source.ToJson();

  ReplayBuffer target(4);
  // Width guards: the document's vectors must match the agent this buffer
  // will feed, feature- and mask-wise.
  EXPECT_THROW(target.LoadJson(good, /*feature_width=*/2, /*slot_count=*/1),
               util::JsonError);
  EXPECT_THROW(target.LoadJson(good, /*feature_width=*/1, /*slot_count=*/2),
               util::JsonError);

  // A taken slot beyond the agent's mini-action count would index out of
  // the Q-row during replay.
  util::JsonValue bad_slot = source.ToJson();
  bad_slot.MutableArray()[0].MutableObject()["taken_slots"] =
      util::JsonValue(util::JsonArray{util::JsonValue(std::int64_t{7})});
  EXPECT_THROW(target.LoadJson(bad_slot, 1, 1), util::JsonError);

  util::JsonValue nan_reward = source.ToJson();
  nan_reward.MutableArray()[0].MutableObject()["reward"] =
      util::JsonValue(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(target.LoadJson(nan_reward, 1, 1), util::JsonError);

  util::JsonValue inf_feature = source.ToJson();
  inf_feature.MutableArray()[0]
      .MutableObject()["features"]
      .MutableArray()[0] =
      util::JsonValue(std::numeric_limits<double>::infinity());
  EXPECT_THROW(target.LoadJson(inf_feature, 1, 1), util::JsonError);
  EXPECT_EQ(target.size(), 0u);
}

TEST(ReplayBuffer, RejectedLoadLeavesExistingExperienceIntact) {
  ReplayBuffer buffer(4);
  buffer.Add(MakeExperience(1.0));
  buffer.Add(MakeExperience(2.0));
  const std::string before = buffer.ToJson().Dump();

  util::JsonValue hostile = buffer.ToJson();
  hostile.MutableArray()[1].MutableObject()["reward"] =
      util::JsonValue(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(buffer.LoadJson(hostile, 1, 1), util::JsonError);
  // Validation happens before the commit: the real memory survives.
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.ToJson().Dump(), before);
}

}  // namespace
}  // namespace jarvis::rl
