#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace jarvis::util {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(JARVIS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(JARVIS_CHECK(true, "never formatted"));
  EXPECT_NO_THROW(JARVIS_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(JARVIS_CHECK_LT(3, 4, "ordering"));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(JARVIS_CHECK(false), CheckError);
  // CheckError is a std::logic_error so generic handlers still work.
  EXPECT_THROW(JARVIS_CHECK(false), std::logic_error);
}

TEST(Check, MessageCarriesConditionFileAndArgs) {
  try {
    const int got = 3;
    JARVIS_CHECK(got == 4, "expected four, got ", got);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got == 4"), std::string::npos) << what;
    EXPECT_NE(what.find("expected four, got 3"), std::string::npos) << what;
    EXPECT_NE(what.find("util_check_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, BinaryChecksReportBothOperands) {
  try {
    const std::size_t width = 2;
    const std::size_t expected = 5;
    JARVIS_CHECK_EQ(width, expected, "width mismatch");
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("width == expected"), std::string::npos) << what;
    EXPECT_NE(what.find("(2 vs 5)"), std::string::npos) << what;
    EXPECT_NE(what.find("width mismatch"), std::string::npos) << what;
  }
}

TEST(Check, AllComparisonVariants) {
  EXPECT_THROW(JARVIS_CHECK_NE(7, 7), CheckError);
  EXPECT_THROW(JARVIS_CHECK_LT(4, 4), CheckError);
  EXPECT_THROW(JARVIS_CHECK_LE(5, 4), CheckError);
  EXPECT_THROW(JARVIS_CHECK_GT(4, 4), CheckError);
  EXPECT_THROW(JARVIS_CHECK_GE(3, 4), CheckError);
  EXPECT_NO_THROW(JARVIS_CHECK_NE(7, 8));
  EXPECT_NO_THROW(JARVIS_CHECK_LE(4, 4));
  EXPECT_NO_THROW(JARVIS_CHECK_GE(4, 4));
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  JARVIS_CHECK([&] { return ++calls; }() == 1);
  EXPECT_EQ(calls, 1);
}

// The test binaries compile with JARVIS_DCHECK_ENABLED=1 (see
// tests/CMakeLists.txt), so DCHECKs behave exactly like CHECKs here; the
// library built without it keeps the unchecked fast path.
TEST(Check, DcheckActiveInTestBuilds) {
  static_assert(JARVIS_DCHECK_ENABLED == 1,
                "test binaries must force-enable DCHECKs");
  EXPECT_THROW(JARVIS_DCHECK(false, "debug contract"), CheckError);
  EXPECT_THROW(JARVIS_DCHECK_EQ(1, 2), CheckError);
  EXPECT_NO_THROW(JARVIS_DCHECK(true));
}

TEST(Check, StreamedMessageSupportsMixedTypes) {
  try {
    JARVIS_CHECK(false, "shape [", 2, "x", 3, "] vs scale ", 1.5);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("shape [2x3] vs scale 1.5"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace jarvis::util
