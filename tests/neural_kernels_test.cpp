// Bit-parity pins for the optimized kernels: the restructured-loop,
// scratch-reusing production path (Tensor::MatMulInto and friends, the
// DenseLayer/Network scratch forward/backward, the in-place Sgd step) must
// produce bit-for-bit the doubles the naive reference implementations
// produce — forward, TrainBatch, and TrainBatchMasked alike. No #ifdef
// selects between the paths: both are always compiled, and every
// comparison below is exact (memcmp on the raw doubles, not a tolerance).
#include <gtest/gtest.h>

#include <cstring>

#include "neural/network.h"
#include "neural/testing/reference_kernels.h"
#include "util/rng.h"

namespace jarvis::neural {
namespace {

using testing::ReferenceMatMul;
using testing::ReferenceModel;

void ExpectBitEqual(const Tensor& actual, const Tensor& expected,
                    const std::string& what) {
  ASSERT_TRUE(actual.SameShape(expected))
      << what << ": " << actual.ShapeString() << " vs "
      << expected.ShapeString();
  const auto& a = actual.data();
  const auto& e = expected.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a[i], &e[i], sizeof(double)), 0)
        << what << " element " << i << ": " << a[i] << " vs " << e[i];
  }
}

Tensor RandomTensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  return Tensor::Generate(rows, cols,
                          [&] { return rng.NextUniform(-2.0, 2.0); });
}

TEST(KernelParity, MatMulIntoMatchesNaiveReference) {
  util::Rng rng(41);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 2}, {8, 24, 13}, {32, 64, 64}};
  for (const auto& shape : shapes) {
    const Tensor a = RandomTensor(shape[0], shape[1], rng);
    const Tensor b = RandomTensor(shape[1], shape[2], rng);
    ExpectBitEqual(a.MatMul(b), ReferenceMatMul(a, b), "MatMul");
  }
}

TEST(KernelParity, TransposedKernelsMatchTransposeThenMultiply) {
  util::Rng rng(43);
  const Tensor grad_pre = RandomTensor(16, 9, rng);   // batch x out
  const Tensor weights = RandomTensor(24, 9, rng);    // in x out
  const Tensor inputs = RandomTensor(16, 24, rng);    // batch x in

  // out = grad_pre * weights^T (MatMulTransposedInto).
  Tensor grad_input;
  grad_pre.MatMulTransposedInto(weights, grad_input);
  ExpectBitEqual(grad_input, ReferenceMatMul(grad_pre, weights.Transposed()),
                 "MatMulTransposedInto");

  // out += inputs^T * grad_pre from zero (TransposedMatMulAccumulate).
  Tensor grad_weights(24, 9, 0.0);
  inputs.TransposedMatMulAccumulate(grad_pre, grad_weights);
  ExpectBitEqual(grad_weights,
                 ReferenceMatMul(inputs.Transposed(), grad_pre),
                 "TransposedMatMulAccumulate");
}

// The DQN shape: ReLU hidden stack, identity (linear) output head, MSE.
Network MakeDqnShapedNetwork(double lr, double momentum, std::uint64_t seed) {
  return Network(12,
                 {{16, Activation::kRelu},
                  {16, Activation::kRelu},
                  {7, Activation::kIdentity}},
                 Loss::kMeanSquaredError, std::make_unique<Sgd>(lr, momentum),
                 util::Rng(seed));
}

TEST(KernelParity, ForwardBitIdenticalToReferenceAcrossBatchSizes) {
  const Network network = MakeDqnShapedNetwork(0.01, 0.0, 47);
  const ReferenceModel reference = ReferenceModel::FromNetwork(network, 0.01);
  util::Rng rng(48);
  for (std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                            std::size_t{128}}) {
    const Tensor input = RandomTensor(batch, 12, rng);
    ExpectBitEqual(network.Predict(input), reference.Predict(input),
                   "forward batch=" + std::to_string(batch));
  }
  // PredictOne rides the same kernels: row 0 of a 1-row batch.
  const Tensor one = RandomTensor(1, 12, rng);
  const auto row = network.PredictOne(one.RowVector(0));
  const Tensor ref_row = reference.Predict(one);
  ASSERT_EQ(row.size(), ref_row.cols());
  for (std::size_t c = 0; c < row.size(); ++c) {
    EXPECT_EQ(std::memcmp(&row[c], &ref_row.data()[c], sizeof(double)), 0)
        << "PredictOne col " << c;
  }
}

void ExpectParametersBitEqual(const Network& network,
                              const ReferenceModel& reference,
                              const std::string& what) {
  ASSERT_EQ(network.layers().size(), reference.layers.size());
  for (std::size_t li = 0; li < reference.layers.size(); ++li) {
    ExpectBitEqual(network.layers()[li].weights(),
                   reference.layers[li].weights,
                   what + " layer " + std::to_string(li) + " weights");
    ExpectBitEqual(network.layers()[li].biases(),
                   reference.layers[li].biases,
                   what + " layer " + std::to_string(li) + " biases");
  }
}

void RunTrainingParity(double momentum) {
  const double lr = 0.05;
  Network network = MakeDqnShapedNetwork(lr, momentum, 53);
  ReferenceModel reference =
      ReferenceModel::FromNetwork(network, lr, momentum);
  ExpectParametersBitEqual(network, reference, "seed");
  util::Rng rng(54);
  for (int step = 0; step < 8; ++step) {
    const Tensor input = RandomTensor(32, 12, rng);
    const Tensor target = RandomTensor(32, 7, rng);
    const double loss = network.TrainBatch(input, target);
    const double ref_loss = reference.TrainBatch(input, target);
    EXPECT_EQ(std::memcmp(&loss, &ref_loss, sizeof(double)), 0)
        << "loss diverged at step " << step;
    ExpectParametersBitEqual(network, reference,
                             "step " + std::to_string(step));
  }
}

TEST(KernelParity, TrainBatchTrajectoryBitIdenticalPlainSgd) {
  RunTrainingParity(/*momentum=*/0.0);
}

TEST(KernelParity, TrainBatchTrajectoryBitIdenticalMomentumSgd) {
  RunTrainingParity(/*momentum=*/0.9);
}

TEST(KernelParity, TrainBatchMaskedTrajectoryBitIdentical) {
  const double lr = 0.05;
  Network network = MakeDqnShapedNetwork(lr, 0.0, 59);
  ReferenceModel reference = ReferenceModel::FromNetwork(network, lr);
  util::Rng rng(60);
  for (int step = 0; step < 8; ++step) {
    const Tensor input = RandomTensor(32, 12, rng);
    const Tensor target = RandomTensor(32, 7, rng);
    // Replay-shaped mask: roughly one taken slot in three.
    const Tensor mask = Tensor::Generate(
        32, 7, [&] { return rng.NextBool(1.0 / 3.0) ? 1.0 : 0.0; });
    const double loss = network.TrainBatchMasked(input, target, mask);
    const double ref_loss = reference.TrainBatchMasked(input, target, mask);
    EXPECT_EQ(std::memcmp(&loss, &ref_loss, sizeof(double)), 0)
        << "masked loss diverged at step " << step;
    ExpectParametersBitEqual(network, reference,
                             "masked step " + std::to_string(step));
  }
}

// The replay fast path — one ForwardForTraining whose cached activations
// feed TrainCachedMasked — must be bit-identical to the two-pass
// TrainBatchMasked, including when a PredictScratch (the replay
// bootstrap's forward) runs between the two halves.
TEST(KernelParity, TrainCachedMaskedMatchesTrainBatchMasked) {
  const double lr = 0.05;
  Network two_pass = MakeDqnShapedNetwork(lr, 0.0, 67);
  Network fast_path = MakeDqnShapedNetwork(lr, 0.0, 67);
  util::Rng rng(68);
  for (int step = 0; step < 6; ++step) {
    const Tensor input = RandomTensor(32, 12, rng);
    const Tensor target = RandomTensor(32, 7, rng);
    const Tensor mask = Tensor::Generate(
        32, 7, [&] { return rng.NextBool(1.0 / 3.0) ? 1.0 : 0.0; });
    const Tensor probe = RandomTensor(4, 12, rng);

    const double loss_two_pass = two_pass.TrainBatchMasked(input, target, mask);

    fast_path.ForwardForTraining(input);
    fast_path.Predict(probe);  // bootstrap-style forward between the halves
    const double loss_fast = fast_path.TrainCachedMasked(target, mask);

    EXPECT_EQ(std::memcmp(&loss_two_pass, &loss_fast, sizeof(double)), 0)
        << "cached-path loss diverged at step " << step;
    for (std::size_t li = 0; li < two_pass.layers().size(); ++li) {
      ExpectBitEqual(fast_path.layers()[li].weights(),
                     two_pass.layers()[li].weights(),
                     "cached step " + std::to_string(step) + " layer " +
                         std::to_string(li) + " weights");
      ExpectBitEqual(fast_path.layers()[li].biases(),
                     two_pass.layers()[li].biases(),
                     "cached step " + std::to_string(step) + " layer " +
                         std::to_string(li) + " biases");
    }
  }
}

// Mixing training and inference must not perturb either: the inference
// ping-pong scratch and the layer forward caches are distinct, so a
// Predict between TrainBatch calls leaves the training trajectory
// untouched.
TEST(KernelParity, InterleavedPredictDoesNotPerturbTraining) {
  const double lr = 0.05;
  Network network = MakeDqnShapedNetwork(lr, 0.0, 61);
  ReferenceModel reference = ReferenceModel::FromNetwork(network, lr);
  util::Rng rng(62);
  for (int step = 0; step < 4; ++step) {
    const Tensor probe = RandomTensor(5, 12, rng);
    ExpectBitEqual(network.Predict(probe), reference.Predict(probe),
                   "interleaved predict " + std::to_string(step));
    const Tensor input = RandomTensor(16, 12, rng);
    const Tensor target = RandomTensor(16, 7, rng);
    network.TrainBatch(input, target);
    reference.TrainBatch(input, target);
    ExpectParametersBitEqual(network, reference,
                             "interleaved step " + std::to_string(step));
  }
}

}  // namespace
}  // namespace jarvis::neural
