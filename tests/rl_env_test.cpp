#include "rl/iot_env.h"

#include <gtest/gtest.h>

#include "fsm/device_library.h"
#include "sim/testbed.h"

namespace jarvis::rl {
namespace {

class EnvFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 2000;
    testbed_ = new sim::Testbed(config);
    learner_ = new spl::SafetyPolicyLearner(testbed_->home_a(),
                                            spl::SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
    natural_ = new sim::DayTrace(testbed_->home_b_data().Day(42));
  }
  static void TearDownTestSuite() {
    delete natural_;
    delete learner_;
    delete testbed_;
    natural_ = nullptr;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  IoTEnv MakeEnv(bool constrained = true, int interval = 15) const {
    IoTEnvConfig config;
    config.constrained = constrained;
    config.decision_interval_minutes = interval;
    return IoTEnv(testbed_->home_a(), *natural_, sim::ThermalConfig{},
                  learner_, config);
  }

  static sim::Testbed* testbed_;
  static spl::SafetyPolicyLearner* learner_;
  static sim::DayTrace* natural_;
};

sim::Testbed* EnvFixture::testbed_ = nullptr;
spl::SafetyPolicyLearner* EnvFixture::learner_ = nullptr;
sim::DayTrace* EnvFixture::natural_ = nullptr;

TEST_F(EnvFixture, EpisodeShape) {
  IoTEnv env = MakeEnv();
  EXPECT_EQ(env.steps_per_episode(), 96);  // 1440 / 15
  EXPECT_FALSE(env.done());
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  int steps = 0;
  while (!env.done()) {
    const StepResult result = env.Step(noop);
    ++steps;
    EXPECT_EQ(result.done, env.done());
  }
  EXPECT_EQ(steps, 96);
  EXPECT_EQ(env.episode().size(),
            static_cast<std::size_t>(util::kMinutesPerDay));
  EXPECT_THROW(env.Step(noop), std::logic_error);
}

TEST_F(EnvFixture, ResetRestoresInitialConditions) {
  IoTEnv env = MakeEnv();
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  env.Step(noop);
  const double reward_after_one = env.cumulative_reward();
  env.Reset();
  EXPECT_EQ(env.current_minute(), 0);
  EXPECT_DOUBLE_EQ(env.cumulative_reward(), 0.0);
  EXPECT_EQ(env.state(), natural_->episode.initial_state());
  env.Step(noop);
  EXPECT_DOUBLE_EQ(env.cumulative_reward(), reward_after_one)
      << "deterministic replay after reset";
}

TEST_F(EnvFixture, StepRewardIsMeanPerMinute) {
  IoTEnv env = MakeEnv(true, 15);
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  const StepResult result = env.Step(noop);
  // Cumulative tracks the un-normalized sum; the step reward is the mean.
  EXPECT_NEAR(result.reward, env.cumulative_reward() / 15.0, 1e-9);
}

TEST_F(EnvFixture, FeaturesWellFormed) {
  IoTEnv env = MakeEnv();
  const auto features = env.Features();
  EXPECT_EQ(features.size(), env.feature_width());
  EXPECT_EQ(features.size(),
            testbed_->home_a().codec().one_hot_width() + 7);
  for (double f : features) {
    EXPECT_GE(f, -2.0);
    EXPECT_LE(f, 2.0);
  }
}

TEST_F(EnvFixture, ConstrainedMaskSubsetsUnconstrained) {
  IoTEnv constrained = MakeEnv(true);
  IoTEnv unconstrained = MakeEnv(false);
  const auto safe_mask = constrained.SafeSlotMask();
  const auto free_mask = unconstrained.SafeSlotMask();
  ASSERT_EQ(safe_mask.size(), free_mask.size());
  std::size_t safe_count = 0, free_count = 0;
  for (std::size_t i = 0; i < safe_mask.size(); ++i) {
    if (safe_mask[i]) {
      ++safe_count;
      EXPECT_TRUE(free_mask[i]) << "constrained admits what unconstrained "
                                   "would not";
    }
    if (free_mask[i]) ++free_count;
  }
  EXPECT_LT(safe_count, free_count);
  // No-ops always on in both.
  for (std::size_t d = 0; d < testbed_->home_a().device_count(); ++d) {
    const auto noop = testbed_->home_a().codec().NoOpSlot(
        static_cast<fsm::DeviceId>(d));
    EXPECT_TRUE(safe_mask[noop]);
  }
}

TEST_F(EnvFixture, ConstrainedEnvRefusesUnsafeActions) {
  IoTEnv env = MakeEnv(true);
  const auto& home = testbed_->home_a();
  // Powering off the temperature sensor is never whitelisted.
  fsm::ActionVector attack(home.device_count(), fsm::kNoAction);
  const auto sensor = home.DeviceIdByLabel("temp_sensor");
  attack[static_cast<std::size_t>(sensor)] =
      *home.device(sensor).FindAction("power_off");
  env.Step(attack);
  // The sensor stays on and no violation is recorded (the action was
  // blocked, not executed).
  EXPECT_NE(env.state()[static_cast<std::size_t>(sensor)],
            *home.device(sensor).FindState("off"));
  EXPECT_EQ(env.violations(), 0u);
}

TEST_F(EnvFixture, UnconstrainedEnvExecutesAndCountsViolations) {
  IoTEnv env = MakeEnv(false);
  const auto& home = testbed_->home_a();
  fsm::ActionVector attack(home.device_count(), fsm::kNoAction);
  const auto sensor = home.DeviceIdByLabel("temp_sensor");
  attack[static_cast<std::size_t>(sensor)] =
      *home.device(sensor).FindAction("power_off");
  env.Step(attack);
  EXPECT_EQ(env.state()[static_cast<std::size_t>(sensor)],
            *home.device(sensor).FindState("off"));
  EXPECT_EQ(env.violations(), 1u);
}

TEST_F(EnvFixture, ResidentWinsSameIntervalConflicts) {
  // At the arrival minute the resident unlocks; an agent lock action on the
  // same device in that interval is dropped (constraint 4).
  IoTEnv env = MakeEnv(false, 1);
  const auto& home = testbed_->home_a();
  const int arrival = natural_->scenario.arrival_minutes.at(0);
  const fsm::ActionVector noop(home.device_count(), fsm::kNoAction);
  while (env.current_minute() < arrival) env.Step(noop);
  fsm::ActionVector contest(home.device_count(), fsm::kNoAction);
  contest[0] = *home.device(0).FindAction("lock");
  env.Step(contest);
  EXPECT_EQ(env.state()[0], *home.device(0).FindState("unlocked"))
      << "resident's unlock should win the interval";
}

TEST_F(EnvFixture, ThermostatActionChangesPhysics) {
  IoTEnv env = MakeEnv(false, 15);
  const auto& home = testbed_->home_a();
  const auto thermostat = home.DeviceIdByLabel("thermostat");
  fsm::ActionVector heat(home.device_count(), fsm::kNoAction);
  heat[static_cast<std::size_t>(thermostat)] =
      *home.device(thermostat).FindAction("increase_temp");
  env.Step(heat);
  const double heated = env.indoor_trace().back();

  IoTEnv cold = MakeEnv(false, 15);
  cold.Step(fsm::ActionVector(home.device_count(), fsm::kNoAction));
  const double unheated = cold.indoor_trace().back();
  EXPECT_GT(heated, unheated);
}

TEST_F(EnvFixture, MetricsComparableToNatural) {
  IoTEnv env = MakeEnv();
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  while (!env.done()) env.Step(noop);
  const sim::DayMetrics metrics = env.Metrics();
  // Doing nothing consumes less than natural behavior (no thermostat, no
  // appliances beyond the resident-driven ones).
  EXPECT_LT(metrics.energy_kwh, natural_->metrics.energy_kwh);
  EXPECT_GT(metrics.energy_kwh, 0.0);
}

TEST_F(EnvFixture, ConfigValidation) {
  IoTEnvConfig config;
  config.constrained = true;
  EXPECT_THROW(IoTEnv(testbed_->home_a(), *natural_, sim::ThermalConfig{},
                      nullptr, config),
               std::invalid_argument);
  config.constrained = false;
  config.decision_interval_minutes = 7;  // does not divide 1440
  EXPECT_THROW(IoTEnv(testbed_->home_a(), *natural_, sim::ThermalConfig{},
                      learner_, config),
               std::invalid_argument);
}

TEST_F(EnvFixture, DeferrableDemandDisutilityAccrues) {
  // Two runs: one starts the dishwasher at its preferred time, the other
  // never does; the latter accumulates less utility (dis-utility charge).
  const auto& home = testbed_->home_a();
  const auto dishwasher = home.DeviceIdByLabel("dishwasher");
  int preferred = -1;
  for (const auto& demand : natural_->scenario.demands) {
    if (demand.device_label == "dishwasher") preferred = demand.preferred_minute;
  }
  ASSERT_GE(preferred, 0);

  IoTEnv lazy = MakeEnv(false, 1);
  IoTEnv prompt = MakeEnv(false, 1);
  const fsm::ActionVector noop(home.device_count(), fsm::kNoAction);
  while (!lazy.done()) {
    lazy.Step(noop);
    fsm::ActionVector action = noop;
    const int minute = prompt.current_minute();
    if (minute == preferred - 1) {
      action[static_cast<std::size_t>(dishwasher)] =
          *home.device(dishwasher).FindAction("power_on");
    } else if (minute == preferred) {
      action[static_cast<std::size_t>(dishwasher)] =
          *home.device(dishwasher).FindAction("start_cycle");
    }
    prompt.Step(action);
  }
  // The prompt run pays energy for the cycle but avoids the growing delay
  // charge; verify the charge exists by checking the lazy run lost reward
  // relative to a hypothetical no-demand baseline: simply require the two
  // runs differ and the lazy one is not strictly better.
  EXPECT_LT(lazy.cumulative_reward(),
            prompt.cumulative_reward() + 50.0);
}

}  // namespace
}  // namespace jarvis::rl
