// Framing layer under hostile input: the decoder must deliver every
// CRC-verified payload, report each desync as exactly ONE malformed
// episode, and recover to the next well-formed frame — no matter how the
// bytes are cut up or corrupted.
#include "serve/frame.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"

namespace jarvis::serve {
namespace {

// Drains the decoder into (payloads, malformed-episode count).
struct Drained {
  std::vector<std::string> payloads;
  std::size_t malformed = 0;
};

Drained DrainAll(FrameDecoder& decoder) {
  Drained out;
  FrameEvent event;
  while (decoder.Next(&event)) {
    if (event.type == FrameEvent::Type::kPayload) {
      out.payloads.push_back(event.data);
    } else {
      ++out.malformed;
    }
  }
  return out;
}

TEST(Frame, RoundTripsPayloads) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame("hello") + EncodeFrame("") +
               EncodeFrame(std::string(5000, 'x')));
  const Drained out = DrainAll(decoder);
  ASSERT_EQ(out.payloads.size(), 3u);
  EXPECT_EQ(out.payloads[0], "hello");
  EXPECT_EQ(out.payloads[1], "");
  EXPECT_EQ(out.payloads[2], std::string(5000, 'x'));
  EXPECT_EQ(out.malformed, 0u);
  EXPECT_EQ(decoder.malformed_frames(), 0u);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(Frame, PayloadMayContainMagicAndBinary) {
  // A payload that embeds the frame magic and every byte value must not
  // confuse the decoder: the length prefix frames it, not a delimiter.
  std::string payload = "JVSF";
  for (int b = 0; b < 256; ++b) payload.push_back(static_cast<char>(b));
  payload += "JVSFJVSF";
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(payload) + EncodeFrame("after"));
  const Drained out = DrainAll(decoder);
  ASSERT_EQ(out.payloads.size(), 2u);
  EXPECT_EQ(out.payloads[0], payload);
  EXPECT_EQ(out.payloads[1], "after");
  EXPECT_EQ(out.malformed, 0u);
}

TEST(Frame, ByteAtATimeFeedStillDecodes) {
  const std::string wire = EncodeFrame("one") + EncodeFrame("two");
  FrameDecoder decoder;
  std::vector<std::string> payloads;
  std::size_t malformed = 0;
  for (char byte : wire) {
    decoder.Feed(&byte, 1);
    FrameEvent event;
    while (decoder.Next(&event)) {
      if (event.type == FrameEvent::Type::kPayload) {
        payloads.push_back(event.data);
      } else {
        ++malformed;
      }
    }
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "one");
  EXPECT_EQ(payloads[1], "two");
  EXPECT_EQ(malformed, 0u);
}

TEST(Frame, TruncatedFrameStaysPendingNeverEmits) {
  const std::string wire = EncodeFrame("truncated tail");
  FrameDecoder decoder;
  decoder.Feed(wire.substr(0, wire.size() - 3));
  const Drained out = DrainAll(decoder);
  EXPECT_TRUE(out.payloads.empty());
  EXPECT_EQ(out.malformed, 0u);
  EXPECT_GT(decoder.pending_bytes(), 0u);
  // The missing bytes arriving later complete the frame.
  decoder.Feed(wire.substr(wire.size() - 3));
  const Drained rest = DrainAll(decoder);
  ASSERT_EQ(rest.payloads.size(), 1u);
  EXPECT_EQ(rest.payloads[0], "truncated tail");
}

TEST(Frame, GarbageRunIsOneEpisodeThenRecovers) {
  // 4 KiB of garbage (including stray 'J's that almost look like magic)
  // must cost exactly one malformed episode, and the genuine frame after
  // it must decode.
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(i % 7 == 0 ? 'J' : static_cast<char>(i * 31 + 5));
  }
  FrameDecoder decoder;
  decoder.Feed(garbage + EncodeFrame("recovered"));
  const Drained out = DrainAll(decoder);
  EXPECT_EQ(out.malformed, 1u);
  ASSERT_EQ(out.payloads.size(), 1u);
  EXPECT_EQ(out.payloads[0], "recovered");
  EXPECT_EQ(decoder.malformed_frames(), 1u);
}

TEST(Frame, MagicSplitAcrossFeedsDuringResync) {
  // While resyncing after garbage, a real frame whose magic straddles two
  // Feed calls must not be skipped.
  const std::string frame = EncodeFrame("split magic");
  FrameDecoder decoder;
  decoder.Feed("!!!garbage!!!" + frame.substr(0, 2));  // "JV"
  EXPECT_EQ(DrainAll(decoder).malformed, 1u);
  decoder.Feed(frame.substr(2));
  const Drained out = DrainAll(decoder);
  ASSERT_EQ(out.payloads.size(), 1u);
  EXPECT_EQ(out.payloads[0], "split magic");
  EXPECT_EQ(decoder.malformed_frames(), 1u);
}

TEST(Frame, OversizedLengthPrefixIsMalformedNotAllocated) {
  // Magic + a 1 GiB length claim: rejected as one episode, never trusted
  // (a hostile peer must not make the daemon reserve a giant buffer).
  std::string wire(kFrameMagic, sizeof(kFrameMagic));
  wire += std::string("\xff\xff\xff\x3f", 4);  // length = ~1 GiB, LE
  wire += std::string("\0\0\0\0", 4);          // crc (never reached)
  FrameDecoder decoder;
  decoder.Feed(wire + EncodeFrame("still alive"));
  const Drained out = DrainAll(decoder);
  EXPECT_EQ(out.malformed, 1u);
  ASSERT_EQ(out.payloads.size(), 1u);
  EXPECT_EQ(out.payloads[0], "still alive");
}

TEST(Frame, CrcMismatchDropsFrameAsOneEpisode) {
  std::string corrupt = EncodeFrame("corrupt me");
  corrupt[corrupt.size() - 3] ^= 0x5a;  // flip a payload byte
  FrameDecoder decoder;
  decoder.Feed(corrupt + EncodeFrame("clean"));
  const Drained out = DrainAll(decoder);
  EXPECT_EQ(out.malformed, 1u);
  ASSERT_EQ(out.payloads.size(), 1u);
  EXPECT_EQ(out.payloads[0], "clean");
}

TEST(Frame, EachGarbageBurstIsItsOwnEpisode) {
  FrameDecoder decoder;
  decoder.Feed("garbage-one" + EncodeFrame("a") + std::string("garbage-two") +
               EncodeFrame("b"));
  const Drained out = DrainAll(decoder);
  EXPECT_EQ(out.malformed, 2u);
  ASSERT_EQ(out.payloads.size(), 2u);
  EXPECT_EQ(out.payloads[0], "a");
  EXPECT_EQ(out.payloads[1], "b");
}

TEST(Frame, EncodeRejectsOversizedPayload) {
  EXPECT_THROW(EncodeFrame(std::string(kMaxFramePayloadBytes + 1, 'x')),
               util::CheckError);
}

}  // namespace
}  // namespace jarvis::serve
