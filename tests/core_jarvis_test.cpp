#include "core/jarvis.h"

#include <gtest/gtest.h>

#include "core/benefit_space.h"
#include "sim/testbed.h"

namespace jarvis::core {
namespace {

class JarvisFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig testbed_config;
    testbed_config.benign_anomaly_samples = 2000;
    testbed_ = new sim::Testbed(testbed_config);
    JarvisConfig config;
    config.trainer.episodes = 8;  // fast enough for unit tests
    jarvis_ = new Jarvis(testbed_->home_a(), config);
    jarvis_->LearnPolicies(testbed_->HomeALearningEpisodes(),
                           testbed_->BuildTrainingSet());
  }
  static void TearDownTestSuite() {
    delete jarvis_;
    delete testbed_;
    jarvis_ = nullptr;
    testbed_ = nullptr;
  }

  static sim::Testbed* testbed_;
  static Jarvis* jarvis_;
};

sim::Testbed* JarvisFixture::testbed_ = nullptr;
Jarvis* JarvisFixture::jarvis_ = nullptr;

TEST_F(JarvisFixture, LearnedStateExposed) {
  EXPECT_TRUE(jarvis_->learned());
  EXPECT_GT(jarvis_->learner().table().admitted_key_count(), 0u);
}

TEST_F(JarvisFixture, GuardsBeforeLearning) {
  JarvisConfig config;
  Jarvis fresh(testbed_->home_a(), config);
  const sim::DayTrace day = testbed_->home_b_data().Day(1);
  EXPECT_THROW(fresh.OptimizeDay(day, rl::RewardWeights{}), std::logic_error);
  EXPECT_THROW(fresh.Audit(day.episode), std::logic_error);
  EXPECT_THROW(fresh.SuggestAction(day.episode.initial_state(), 0),
               std::logic_error);
}

TEST_F(JarvisFixture, OptimizeDayProducesComparableMetrics) {
  const sim::DayTrace day = testbed_->home_b_data().Day(5);
  const DayPlan plan = jarvis_->OptimizeDay(day, rl::RewardWeights{});
  EXPECT_EQ(plan.violations, 0u);
  EXPECT_GT(plan.normal_metrics.energy_kwh, 0.0);
  EXPECT_GT(plan.optimized_metrics.energy_kwh, 0.0);
  EXPECT_FALSE(plan.train.episode_rewards.empty());
  EXPECT_TRUE(plan.train.greedy_episode.IsComplete());
}

TEST_F(JarvisFixture, SuggestActionIsSafeAndShaped) {
  const sim::DayTrace day = testbed_->home_b_data().Day(5);
  jarvis_->OptimizeDay(day, rl::RewardWeights{});
  for (int minute : {60, 480, 720, 1200}) {
    const auto action =
        jarvis_->SuggestAction(day.episode.initial_state(), minute);
    EXPECT_EQ(action.size(), testbed_->home_a().device_count());
    // Every suggested mini-action must be whitelisted.
    for (std::size_t d = 0; d < action.size(); ++d) {
      if (action[d] == fsm::kNoAction) continue;
      EXPECT_TRUE(jarvis_->learner().table().IsMiniActionSafe(
          day.episode.initial_state(),
          {static_cast<fsm::DeviceId>(d), action[d]}, minute));
    }
  }
}

TEST_F(JarvisFixture, AuditFlagsInjectedAttack) {
  const auto violations = testbed_->BuildViolations();
  const auto base = testbed_->HomeALearningEpisodes().front();
  const auto injected = sim::AttackGenerator::InjectIntoEpisode(
      testbed_->home_a(), base, violations.front());
  const auto audit = jarvis_->Audit(injected);
  EXPECT_GE(audit.violations, 1u);
  // The learning episode itself audits clean of violations.
  const auto clean = jarvis_->Audit(base);
  EXPECT_EQ(clean.violations, 0u);
}

TEST_F(JarvisFixture, LearnFromEventsFullPipeline) {
  // Feed raw (normalized) events through the parser path.
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  404, sim::BehaviorConfig{0.0, 1});
  const auto generator = testbed_->home_a_generator();
  std::vector<events::Event> events;
  fsm::StateVector state = resident.OvernightState();
  double indoor = 21.0;
  for (int day = 0; day < 2; ++day) {
    const auto trace =
        resident.SimulateDay(generator.Generate(day), state, indoor);
    events.insert(events.end(), trace.events.begin(), trace.events.end());
    state = trace.episode.FinalState(testbed_->home_a());
    indoor = trace.indoor_c.back();
  }
  JarvisConfig config;
  Jarvis fresh(testbed_->home_a(), config);
  const std::size_t episodes = fresh.LearnFromEvents(
      events, resident.OvernightState(), util::SimTime(0),
      testbed_->BuildTrainingSet());
  EXPECT_EQ(episodes, 2u);
  EXPECT_TRUE(fresh.learned());
  EXPECT_THROW(fresh.LearnFromEvents({}, resident.OvernightState(),
                                     util::SimTime(0), {}),
               std::invalid_argument);
}

TEST_F(JarvisFixture, HealthReportAggregatesPipelineCounters) {
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  404, sim::BehaviorConfig{0.0, 1});
  const auto generator = testbed_->home_a_generator();
  const auto trace = resident.SimulateDay(generator.Generate(0),
                                          resident.OvernightState(), 21.0);

  JarvisConfig config;
  config.trainer.episodes = 2;
  config.restarts = 1;
  Jarvis fresh(testbed_->home_a(), config);
  EXPECT_FALSE(fresh.Health().degraded());

  fresh.LearnFromEvents(trace.events, resident.OvernightState(),
                        util::SimTime(0), testbed_->BuildTrainingSet());
  const HealthReport& health = fresh.Health();
  EXPECT_EQ(health.parse.events_seen, trace.events.size());
  EXPECT_TRUE(health.parse.WithinBudget());
  EXPECT_EQ(health.learn.episodes_used, 1u);
  EXPECT_EQ(health.learn.episodes_skipped, 0u);
  EXPECT_GT(health.learn.observations, 0u);
  EXPECT_FALSE(health.degraded());

  // Externally observed degradation folds in.
  faults::FaultCounters injected;
  injected.dropped = 3;
  fresh.NoteInjectedFaults(injected);
  EXPECT_EQ(fresh.Health().injected.dropped, 3u);

  OnlineMonitor monitor(testbed_->home_a(), fresh.learner(),
                        resident.OvernightState());
  monitor.MarkStateUnknown(0);
  events::Event unlock;
  unlock.date = util::SimTime(120);
  unlock.device_label = "lock";
  unlock.attribute_value = "unlocked";
  unlock.command = "unlock";
  monitor.Consume(unlock);
  fresh.NoteMonitor(monitor);
  EXPECT_EQ(fresh.Health().monitor_failsafe_denials, 1u);
  EXPECT_TRUE(fresh.Health().degraded());

  fresh.ResetHealth();
  EXPECT_EQ(fresh.Health().injected.dropped, 0u);
  EXPECT_EQ(fresh.Health().parse.events_seen, 0u);
  EXPECT_FALSE(fresh.Health().degraded());
}

TEST_F(JarvisFixture, LearnFromEventsEnforcesParseDropBudget) {
  sim::ResidentSimulator resident(testbed_->home_a(), sim::ThermalConfig{},
                                  404, sim::BehaviorConfig{0.0, 1});
  const auto generator = testbed_->home_a_generator();
  auto trace = resident.SimulateDay(generator.Generate(0),
                                    resident.OvernightState(), 21.0);
  // Mangle a third of the stream into unknown devices: beyond the default
  // 25% budget, the facade must refuse to learn from the wreckage.
  for (std::size_t i = 0; i < trace.events.size(); i += 3) {
    trace.events[i].device_label = "ghost";
  }
  JarvisConfig config;
  Jarvis fresh(testbed_->home_a(), config);
  EXPECT_THROW(fresh.LearnFromEvents(trace.events, resident.OvernightState(),
                                     util::SimTime(0),
                                     testbed_->BuildTrainingSet()),
               std::runtime_error);
  EXPECT_FALSE(fresh.Health().parse.WithinBudget());
  EXPECT_TRUE(fresh.Health().degraded());

  // Raising the budget lets the pipeline degrade gracefully instead.
  config.parse_drop_budget = 0.5;
  Jarvis lax(testbed_->home_a(), config);
  lax.LearnFromEvents(trace.events, resident.OvernightState(),
                      util::SimTime(0), testbed_->BuildTrainingSet());
  EXPECT_TRUE(lax.learned());
  EXPECT_GT(lax.Health().parse.stats.unknown_device, 0u);
}

TEST_F(JarvisFixture, MetricForSelectsFocusedMetric) {
  sim::DayMetrics metrics;
  metrics.energy_kwh = 1.0;
  metrics.cost_usd = 2.0;
  metrics.comfort_error_c_min = 3.0;
  EXPECT_DOUBLE_EQ(MetricFor("energy", metrics), 1.0);
  EXPECT_DOUBLE_EQ(MetricFor("cost", metrics), 2.0);
  EXPECT_DOUBLE_EQ(MetricFor("temp", metrics), 3.0);
  EXPECT_THROW(MetricFor("bogus", metrics), std::invalid_argument);
}

TEST_F(JarvisFixture, ExplorationComparisonShapes) {
  const sim::DayTrace day = testbed_->home_b_data().Day(3);
  JarvisConfig config;
  ExplorationConfig exploration;
  exploration.episodes = 2;
  const auto points = ExplorationComparison(
      testbed_->home_a(), jarvis_->learner(), day, config, exploration);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) {
    EXPECT_EQ(point.constrained_violations, 0u);
  }
  // Unconstrained exploration commits violations while epsilon is high.
  EXPECT_GT(points.front().unconstrained_violations, 0u);
}

}  // namespace
}  // namespace jarvis::core
