#include "rl/reward.h"

#include <gtest/gtest.h>

namespace jarvis::rl {
namespace {

StepPhysical BasePhysical() {
  StepPhysical physical;
  physical.interval_watts = 2000.0;
  physical.max_watts = 10000.0;
  physical.price_usd_per_kwh = 0.10;
  physical.max_price_usd_per_kwh = 0.40;
  physical.comfort_error_c = 1.0;
  physical.occupied = true;
  physical.pending_disutility = 0.1;
  return physical;
}

TEST(RewardWeights, SweepFocusesOneFunctionality) {
  const auto energy = RewardWeights::Sweep("energy", 0.8);
  EXPECT_DOUBLE_EQ(energy.f_energy, 0.8);
  EXPECT_DOUBLE_EQ(energy.f_cost, 0.1);
  EXPECT_DOUBLE_EQ(energy.f_temp, 0.1);
  EXPECT_NEAR(energy.Sum(), 1.0, 1e-12);

  const auto cost = RewardWeights::Sweep("cost", 0.5);
  EXPECT_DOUBLE_EQ(cost.f_cost, 0.5);
  const auto temp = RewardWeights::Sweep("temp", 0.1);
  EXPECT_DOUBLE_EQ(temp.f_temp, 0.1);
  EXPECT_DOUBLE_EQ(temp.f_energy, 0.45);

  EXPECT_THROW(RewardWeights::Sweep("bogus", 0.5), std::invalid_argument);
  EXPECT_THROW(RewardWeights::Sweep("energy", 1.5), std::invalid_argument);
}

TEST(SmartReward, EnergyRewardDecreasesWithConsumption) {
  const SmartReward reward(RewardWeights{});
  StepPhysical low = BasePhysical();
  low.interval_watts = 100.0;
  StepPhysical high = BasePhysical();
  high.interval_watts = 9000.0;
  EXPECT_GT(reward.EnergyReward(low), reward.EnergyReward(high));
  EXPECT_NEAR(reward.EnergyReward(low), 0.99, 1e-9);
  // Zero consumption = full reward; over-max clamps at 0.
  StepPhysical zero = BasePhysical();
  zero.interval_watts = 0.0;
  EXPECT_DOUBLE_EQ(reward.EnergyReward(zero), 1.0);
  StepPhysical over = BasePhysical();
  over.interval_watts = 20000.0;
  EXPECT_DOUBLE_EQ(reward.EnergyReward(over), 0.0);
}

TEST(SmartReward, CostRewardScalesWithPrice) {
  const SmartReward reward(RewardWeights{});
  StepPhysical cheap = BasePhysical();
  cheap.price_usd_per_kwh = 0.05;
  StepPhysical expensive = BasePhysical();
  expensive.price_usd_per_kwh = 0.40;
  EXPECT_GT(reward.CostReward(cheap), reward.CostReward(expensive));
}

TEST(SmartReward, TempRewardOnlyCountsOccupied) {
  const SmartReward reward(RewardWeights{});
  StepPhysical away = BasePhysical();
  away.occupied = false;
  away.comfort_error_c = 10.0;
  EXPECT_DOUBLE_EQ(reward.TempReward(away), 1.0);

  StepPhysical home = BasePhysical();
  home.comfort_error_c = 2.5;
  EXPECT_DOUBLE_EQ(reward.TempReward(home), 0.5);
  home.comfort_error_c = 99.0;
  EXPECT_DOUBLE_EQ(reward.TempReward(home), 0.0);
  home.comfort_error_c = 0.0;
  EXPECT_DOUBLE_EQ(reward.TempReward(home), 1.0);
}

TEST(SmartReward, UtilityIsWeightedSum) {
  const RewardWeights weights = RewardWeights::Sweep("energy", 0.6);
  const SmartReward reward(weights);
  const StepPhysical physical = BasePhysical();
  const double expected = weights.f_energy * reward.EnergyReward(physical) +
                          weights.f_cost * reward.CostReward(physical) +
                          weights.f_temp * reward.TempReward(physical);
  EXPECT_DOUBLE_EQ(reward.Utility(physical), expected);
}

TEST(SmartReward, ChiScalesDisUtility) {
  RewardWeights weights;
  weights.chi = 2.0;
  const SmartReward relaxed(weights);
  const SmartReward balanced(RewardWeights{});
  const StepPhysical physical = BasePhysical();
  EXPECT_DOUBLE_EQ(relaxed.DisUtility(physical),
                   balanced.DisUtility(physical) / 2.0);
  EXPECT_DOUBLE_EQ(balanced.Compute(physical),
                   balanced.Utility(physical) - physical.pending_disutility);
  RewardWeights bad;
  bad.chi = 0.0;
  EXPECT_THROW(SmartReward{bad}, std::invalid_argument);
}

TEST(SmartReward, DegenerateNormalizersYieldZero) {
  const SmartReward reward(RewardWeights{});
  StepPhysical physical = BasePhysical();
  physical.max_watts = 0.0;
  EXPECT_DOUBLE_EQ(reward.EnergyReward(physical), 0.0);
  EXPECT_DOUBLE_EQ(reward.CostReward(physical), 0.0);
}

// Property sweep: R_smart is monotone non-increasing in consumption for
// every focus weighting.
class RewardMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(RewardMonotonicity, MoreWattsNeverIncreasesReward) {
  const SmartReward reward(RewardWeights::Sweep("energy", GetParam()));
  double previous = 1e18;
  for (double watts = 0.0; watts <= 10000.0; watts += 500.0) {
    StepPhysical physical = BasePhysical();
    physical.interval_watts = watts;
    const double value = reward.Compute(physical);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(FocusWeights, RewardMonotonicity,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace jarvis::rl
