#include "fsm/episode.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include "fsm/device_library.h"

namespace jarvis::fsm {
namespace {

EpisodeConfig MinuteDay() { return {util::kMinutesPerDay, 1}; }

TEST(EpisodeConfig, StepsPerEpisodeCeils) {
  EXPECT_EQ(MinuteDay().StepsPerEpisode(), 1440);
  EXPECT_EQ((EpisodeConfig{60, 1}).StepsPerEpisode(), 60);
  EXPECT_EQ((EpisodeConfig{61, 2}).StepsPerEpisode(), 31);  // ceil(61/2)
  EXPECT_EQ((EpisodeConfig{60, 15}).StepsPerEpisode(), 4);
}

TEST(Episode, RecordsUntilComplete) {
  const EnvironmentFsm fsm = BuildExampleHome();
  const StateVector initial = {0, 0, 0, 2, 2};
  Episode episode({3, 1}, util::SimTime(0), initial);
  EXPECT_FALSE(episode.IsComplete());
  for (int i = 0; i < 3; ++i) {
    episode.Record(util::SimTime(i), initial, ActionVector(5, kNoAction));
  }
  EXPECT_TRUE(episode.IsComplete());
  EXPECT_EQ(episode.size(), 3u);
  EXPECT_THROW(
      episode.Record(util::SimTime(3), initial, ActionVector(5, kNoAction)),
      util::CheckError);
}

TEST(Episode, ValidatesConfig) {
  const StateVector initial = {0};
  EXPECT_THROW(Episode({0, 1}, util::SimTime(0), initial),
               util::CheckError);
  EXPECT_THROW(Episode({10, 0}, util::SimTime(0), initial),
               util::CheckError);
  EXPECT_THROW(Episode({5, 10}, util::SimTime(0), initial),
               util::CheckError);
}

TEST(Episode, FinalStateAppliesLastAction) {
  const EnvironmentFsm fsm = BuildExampleHome();
  const StateVector initial = {0, 0, 0, 2, 2};
  Episode episode({2, 1}, util::SimTime(0), initial);
  EXPECT_EQ(episode.FinalState(fsm), initial);  // empty episode

  ActionVector noop(5, kNoAction);
  episode.Record(util::SimTime(0), initial, noop);
  ActionVector light_on(5, kNoAction);
  light_on[2] = *fsm.device(2).FindAction("power_on");
  episode.Record(util::SimTime(1), initial, light_on);
  const StateVector final_state = episode.FinalState(fsm);
  EXPECT_EQ(final_state[2], *fsm.device(2).FindState("on"));
}

TEST(ExtractTriggerActions, SkipsNoOpStepsAndKeepsMinutes) {
  const EnvironmentFsm fsm = BuildExampleHome();
  const StateVector initial = {0, 0, 0, 2, 2};
  Episode episode({4, 1}, util::SimTime::FromHms(0, 6, 0), initial);
  const ActionVector noop(5, kNoAction);
  ActionVector act(5, kNoAction);
  act[2] = *fsm.device(2).FindAction("power_on");
  episode.Record(util::SimTime::FromHms(0, 6, 0), initial, noop);
  episode.Record(util::SimTime::FromHms(0, 6, 1), initial, act);
  episode.Record(util::SimTime::FromHms(0, 6, 2), initial, noop);
  episode.Record(util::SimTime::FromHms(0, 6, 3), initial, act);

  const auto tas = ExtractTriggerActions({episode});
  ASSERT_EQ(tas.size(), 2u);
  EXPECT_EQ(tas[0].minute_of_day, 6 * 60 + 1);
  EXPECT_EQ(tas[1].minute_of_day, 6 * 60 + 3);
  EXPECT_EQ(tas[0].action, act);
  EXPECT_EQ(tas[0].trigger_state, initial);
}

TEST(ExtractTriggerActions, AggregatesAcrossEpisodes) {
  const EnvironmentFsm fsm = BuildExampleHome();
  const StateVector initial = {0, 0, 0, 2, 2};
  ActionVector act(5, kNoAction);
  act[0] = *fsm.device(0).FindAction("unlock");
  std::vector<Episode> episodes;
  for (int e = 0; e < 3; ++e) {
    Episode episode({1, 1}, util::SimTime::FromDayAndMinute(e, 0), initial);
    episode.Record(util::SimTime::FromDayAndMinute(e, 0), initial, act);
    episodes.push_back(std::move(episode));
  }
  EXPECT_EQ(ExtractTriggerActions(episodes).size(), 3u);
}

TEST(Episode, DebugStringShowsOnlyActiveSteps) {
  const EnvironmentFsm fsm = BuildExampleHome();
  const StateVector initial = {0, 0, 0, 2, 2};
  Episode episode({2, 1}, util::SimTime(0), initial);
  episode.Record(util::SimTime(0), initial, ActionVector(5, kNoAction));
  ActionVector act(5, kNoAction);
  act[2] = *fsm.device(2).FindAction("power_on");
  episode.Record(util::SimTime(1), initial, act);
  const std::string text = episode.DebugString(fsm);
  EXPECT_NE(text.find("power_on"), std::string::npos);
  // Exactly one rendered step line (the no-op one is suppressed).
  EXPECT_EQ(std::count(text.begin(), text.end(), '>'), 1);
}

}  // namespace
}  // namespace jarvis::fsm
