#include <gtest/gtest.h>

#include "sim/prices.h"
#include "sim/scenario.h"
#include "sim/thermal.h"
#include "sim/weather.h"

namespace jarvis::sim {
namespace {

TEST(Weather, PureFunctionOfTime) {
  const WeatherModel weather(WeatherConfig{}, 42);
  const util::SimTime t = util::SimTime::FromHms(100, 12, 0);
  EXPECT_DOUBLE_EQ(weather.OutdoorTempC(t), weather.OutdoorTempC(t));
  const WeatherModel same(WeatherConfig{}, 42);
  EXPECT_DOUBLE_EQ(weather.OutdoorTempC(t), same.OutdoorTempC(t));
  const WeatherModel other(WeatherConfig{}, 43);
  EXPECT_NE(weather.OutdoorTempC(t), other.OutdoorTempC(t));
}

TEST(Weather, SeasonalShape) {
  const WeatherModel weather(WeatherConfig{}, 1);
  // Average across the day to cancel the diurnal component.
  auto day_mean = [&](int day) {
    double total = 0.0;
    for (int m = 0; m < util::kMinutesPerDay; m += 60) {
      total += weather.OutdoorTempC(util::SimTime::FromDayAndMinute(day, m));
    }
    return total / 24.0;
  };
  // Winter (day 20) colder than summer (day ~200).
  EXPECT_LT(day_mean(20), day_mean(200) - 10.0);
}

TEST(Weather, DiurnalShape) {
  WeatherConfig config;
  config.noise_stddev_c = 0.0;  // isolate the deterministic components
  const WeatherModel weather(config, 1);
  const double at_5am = weather.OutdoorTempC(util::SimTime::FromHms(10, 5, 0));
  const double at_3pm = weather.OutdoorTempC(util::SimTime::FromHms(10, 15, 0));
  EXPECT_GT(at_3pm, at_5am + 5.0);
}

TEST(Weather, ForecastTracksActualWithinNoise) {
  const WeatherModel weather(WeatherConfig{}, 5);
  double worst = 0.0;
  for (int day = 0; day < 30; ++day) {
    const util::SimTime t = util::SimTime::FromDayAndMinute(day, 720);
    worst = std::max(worst, std::abs(weather.OutdoorTempC(t) -
                                     weather.ForecastTempC(t)));
  }
  EXPECT_LT(worst, 4.0 * WeatherConfig{}.noise_stddev_c);
}

TEST(Prices, PeakExceedsOffPeak) {
  const DamPriceModel prices(PriceConfig{}, 9);
  double peak_total = 0.0, off_total = 0.0;
  int peak_count = 0, off_count = 0;
  for (int day = 0; day < 20; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const util::SimTime t = util::SimTime::FromHms(day, hour, 0);
      if (prices.IsPeak(t)) {
        peak_total += prices.PriceAt(t);
        ++peak_count;
      } else if (prices.IsOffPeak(t)) {
        off_total += prices.PriceAt(t);
        ++off_count;
      }
    }
  }
  ASSERT_GT(peak_count, 0);
  ASSERT_GT(off_count, 0);
  EXPECT_GT(peak_total / peak_count, 2.0 * (off_total / off_count));
}

TEST(Prices, OffPeakWrapsMidnight) {
  const DamPriceModel prices(PriceConfig{}, 9);
  EXPECT_TRUE(prices.IsOffPeak(util::SimTime::FromHms(0, 23, 0)));
  EXPECT_TRUE(prices.IsOffPeak(util::SimTime::FromHms(0, 2, 0)));
  EXPECT_FALSE(prices.IsOffPeak(util::SimTime::FromHms(0, 12, 0)));
  EXPECT_TRUE(prices.IsPeak(util::SimTime::FromHms(0, 16, 0)));
  EXPECT_FALSE(prices.IsPeak(util::SimTime::FromHms(0, 21, 0)));
}

TEST(Prices, PricesPositiveAndStableWithinHour) {
  const DamPriceModel prices(PriceConfig{}, 10);
  for (int hour = 0; hour < 24; ++hour) {
    const double a = prices.PriceAt(util::SimTime::FromHms(3, hour, 5));
    const double b = prices.PriceAt(util::SimTime::FromHms(3, hour, 55));
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b) << "price should be constant within the hour";
  }
}

TEST(Prices, DayScheduleMatchesPointQueries) {
  const DamPriceModel prices(PriceConfig{}, 11);
  const auto schedule = prices.DaySchedule(7);
  ASSERT_EQ(schedule.size(), 24u);
  for (int hour = 0; hour < 24; ++hour) {
    EXPECT_DOUBLE_EQ(schedule[static_cast<std::size_t>(hour)],
                     prices.PriceAt(util::SimTime::FromHms(7, hour, 0)));
  }
  const int cheapest = prices.CheapestHour(7);
  for (double price : schedule) {
    EXPECT_LE(schedule[static_cast<std::size_t>(cheapest)], price);
  }
}

TEST(Thermal, RelaxesTowardOutdoorWhenOff) {
  ThermalModel thermal(ThermalConfig{});
  thermal.set_indoor_temp_c(21.0);
  for (int i = 0; i < 6 * 60; ++i) thermal.Step(HvacMode::kOff, 0.0);
  EXPECT_LT(thermal.indoor_temp_c(), 21.0);
  EXPECT_GT(thermal.indoor_temp_c(), 0.0);  // never overshoots outdoor
}

TEST(Thermal, HeatingRaisesAgainstColdOutdoor) {
  ThermalModel thermal(ThermalConfig{});
  thermal.set_indoor_temp_c(10.0);
  for (int i = 0; i < 240; ++i) thermal.Step(HvacMode::kHeat, -5.0);
  EXPECT_GT(thermal.indoor_temp_c(), ThermalConfig{}.optimal_low_c)
      << "heater must be able to reach the comfort band in winter";
}

TEST(Thermal, CoolingLowersAgainstHotOutdoor) {
  ThermalModel thermal(ThermalConfig{});
  thermal.set_indoor_temp_c(30.0);
  for (int i = 0; i < 240; ++i) thermal.Step(HvacMode::kCool, 33.0);
  EXPECT_LT(thermal.indoor_temp_c(), ThermalConfig{}.optimal_high_c);
}

TEST(Thermal, SensorStateBands) {
  ThermalModel thermal(ThermalConfig{});
  thermal.set_indoor_temp_c(25.0);
  EXPECT_EQ(thermal.SensorState(), 0);  // above_optimal
  thermal.set_indoor_temp_c(15.0);
  EXPECT_EQ(thermal.SensorState(), 1);  // below_optimal
  thermal.set_indoor_temp_c(21.5);
  EXPECT_EQ(thermal.SensorState(), 2);  // optimal
}

TEST(Thermal, ComfortErrorPiecewise) {
  ThermalModel thermal(ThermalConfig{});
  thermal.set_indoor_temp_c(21.0);
  EXPECT_DOUBLE_EQ(thermal.ComfortErrorC(), 0.0);
  thermal.set_indoor_temp_c(25.0);
  EXPECT_DOUBLE_EQ(thermal.ComfortErrorC(), 25.0 - ThermalConfig{}.optimal_high_c);
  thermal.set_indoor_temp_c(17.0);
  EXPECT_DOUBLE_EQ(thermal.ComfortErrorC(), ThermalConfig{}.optimal_low_c - 17.0);
}

TEST(Thermal, ConfigValidation) {
  ThermalConfig bad;
  bad.optimal_low_c = 25.0;
  bad.optimal_high_c = 20.0;
  EXPECT_THROW(ThermalModel{bad}, std::invalid_argument);
}

TEST(Thermal, HvacModeMapping) {
  EXPECT_EQ(HvacModeFromThermostatState(0), HvacMode::kHeat);
  EXPECT_EQ(HvacModeFromThermostatState(1), HvacMode::kCool);
  EXPECT_EQ(HvacModeFromThermostatState(2), HvacMode::kOff);
  EXPECT_THROW(HvacModeFromThermostatState(3), std::out_of_range);
}

class ScenarioSuite : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioSuite, SeriesShapesAndInvariants) {
  const ScenarioGenerator generator({}, {}, {}, 77);
  const DayScenario scenario = generator.Generate(GetParam());
  EXPECT_EQ(scenario.occupied.size(),
            static_cast<std::size_t>(util::kMinutesPerDay));
  EXPECT_EQ(scenario.outdoor_c.size(), scenario.occupied.size());
  EXPECT_EQ(scenario.price_usd_per_kwh.size(), scenario.occupied.size());
  EXPECT_GT(scenario.sleep_minute, scenario.wake_minute);
  // Departures and arrivals pair up and order correctly.
  ASSERT_EQ(scenario.departure_minutes.size(),
            scenario.arrival_minutes.size());
  for (std::size_t i = 0; i < scenario.departure_minutes.size(); ++i) {
    EXPECT_LT(scenario.departure_minutes[i], scenario.arrival_minutes[i]);
    // House is empty strictly between departure and arrival.
    EXPECT_FALSE(scenario.occupied[static_cast<std::size_t>(
        scenario.departure_minutes[i])]);
    EXPECT_TRUE(scenario.occupied[static_cast<std::size_t>(
        scenario.arrival_minutes[i])]);
  }
  // Demands are sorted and reference real devices.
  for (std::size_t i = 1; i < scenario.demands.size(); ++i) {
    EXPECT_LE(scenario.demands[i - 1].preferred_minute,
              scenario.demands[i].preferred_minute);
  }
  for (const auto& demand : scenario.demands) {
    EXPECT_GE(demand.preferred_minute, 0);
    EXPECT_LT(demand.preferred_minute, util::kMinutesPerDay);
    EXPECT_GT(demand.duration_minutes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Days, ScenarioSuite,
                         ::testing::Values(0, 3, 5, 6, 42, 100, 200, 364));

TEST(Scenario, DeterministicPerSeedAndDay) {
  const ScenarioGenerator a({}, {}, {}, 5);
  const ScenarioGenerator b({}, {}, {}, 5);
  const auto sa = a.Generate(10);
  const auto sb = b.Generate(10);
  EXPECT_EQ(sa.wake_minute, sb.wake_minute);
  EXPECT_EQ(sa.departure_minutes, sb.departure_minutes);
  EXPECT_EQ(sa.occupied, sb.occupied);
  const auto other_day = a.Generate(11);
  EXPECT_NE(sa.wake_minute, other_day.wake_minute);
}

TEST(Scenario, WeekdaysHaveWorkDeparture) {
  const ScenarioGenerator generator({}, {}, {}, 21);
  int weekday_departures = 0, weekdays = 0;
  for (int day = 0; day < 14; ++day) {
    const auto scenario = generator.Generate(day);
    if (!scenario.weekend) {
      ++weekdays;
      weekday_departures += scenario.departure_minutes.empty() ? 0 : 1;
    }
  }
  EXPECT_EQ(weekday_departures, weekdays);
}

}  // namespace
}  // namespace jarvis::sim
