#include "util/strings.h"

#include <gtest/gtest.h>

namespace jarvis::util {
namespace {

TEST(Strings, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"one", "two", "three"};
  EXPECT_EQ(Join(parts, "-"), "one-two-three");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nz\r "), "z");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nochange"), "nochange");
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_TRUE(StartsWith("jarvis_core", "jarvis"));
  EXPECT_FALSE(StartsWith("jar", "jarvis"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(Format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(Format("no args"), "no args");
}

TEST(Strings, Padding) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace jarvis::util
