// Pins the batching invariant the fleet runtime rests on: a batched
// forward pass produces, per row, EXACTLY the doubles the per-row path
// produces (identical op order — see neural::Network::PredictBatch), so
// coalescing many tenants' Q-value queries into one pass cannot perturb
// any tenant's decisions.
#include "runtime/inference_batcher.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fsm/device_library.h"
#include "rl/dqn_agent.h"
#include "util/check.h"
#include "util/rng.h"

namespace jarvis::runtime {
namespace {

neural::Network MakeNetwork(std::size_t inputs, std::size_t outputs,
                            std::uint64_t seed) {
  return neural::Network(
      inputs,
      {{16, neural::Activation::kRelu},
       {12, neural::Activation::kTanh},
       {outputs, neural::Activation::kIdentity}},
      neural::Loss::kMeanSquaredError,
      std::make_unique<neural::Adam>(0.01), util::Rng(seed));
}

std::vector<std::vector<double>> MakeRows(std::size_t count,
                                          std::size_t width,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> rows(count);
  for (auto& row : rows) {
    row.resize(width);
    for (double& x : row) x = rng.NextGaussian();
  }
  return rows;
}

TEST(PredictBatch, RowsExactlyEqualPredictOne) {
  const neural::Network network = MakeNetwork(9, 7, 11);
  const auto rows = MakeRows(33, 9, 22);
  neural::Tensor batch(rows.size(), 9);
  for (std::size_t r = 0; r < rows.size(); ++r) batch.SetRow(r, rows[r]);

  const neural::Tensor out = network.PredictBatch(batch);
  ASSERT_EQ(out.rows(), rows.size());
  ASSERT_EQ(out.cols(), 7u);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double> one = network.PredictOne(rows[r]);
    for (std::size_t c = 0; c < one.size(); ++c) {
      // Exact FP equality, not a tolerance: the batched row must be
      // bit-for-bit the single-row result.
      EXPECT_EQ(out.At(r, c), one[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(PredictBatch, RejectsWidthMismatchAndHandlesEmpty) {
  const neural::Network network = MakeNetwork(5, 3, 1);
  EXPECT_THROW(network.PredictBatch(neural::Tensor(2, 4)),
               jarvis::util::CheckError);
  const neural::Tensor empty = network.PredictBatch(neural::Tensor(0, 5));
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.cols(), 3u);
}

TEST(InferenceBatcher, CoalescedResultsMatchPerRowInference) {
  const neural::Network network = MakeNetwork(6, 4, 5);
  InferenceBatcher batcher(network);
  const auto rows = MakeRows(40, 6, 77);  // "queries from 40 tenants"
  std::vector<std::size_t> tickets;
  tickets.reserve(rows.size());
  for (const auto& row : rows) tickets.push_back(batcher.Enqueue(row));
  EXPECT_EQ(batcher.pending(), rows.size());

  batcher.Flush();
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.flush_batches(), 1u);  // one forward for all 40 queries
  EXPECT_EQ(batcher.rows_inferred(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batcher.Result(tickets[i]), network.PredictOne(rows[i]));
  }
}

TEST(InferenceBatcher, ChunksLargeBatchesAndKeepsTicketOrder) {
  const neural::Network network = MakeNetwork(6, 4, 5);
  InferenceBatcher batcher(network, /*max_batch_rows=*/8);
  const auto rows = MakeRows(20, 6, 3);
  for (const auto& row : rows) batcher.Enqueue(row);
  batcher.Flush();
  EXPECT_EQ(batcher.flush_batches(), 3u);  // 8 + 8 + 4
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batcher.Result(i), network.PredictOne(rows[i]));
  }
}

TEST(InferenceBatcher, MultipleFlushWindowsAccumulateTickets) {
  const neural::Network network = MakeNetwork(6, 4, 5);
  InferenceBatcher batcher(network);
  const auto rows = MakeRows(6, 6, 9);
  for (std::size_t i = 0; i < 3; ++i) batcher.Enqueue(rows[i]);
  batcher.Flush();
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(batcher.Enqueue(rows[i]), i);
  }
  batcher.Flush();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(batcher.Result(i), network.PredictOne(rows[i]));
  }
  batcher.Reset();
  EXPECT_EQ(batcher.ticket_count(), 0u);
  EXPECT_THROW(batcher.Result(0), std::logic_error);
}

TEST(InferenceBatcher, GuardsBadInput) {
  const neural::Network network = MakeNetwork(6, 4, 5);
  InferenceBatcher batcher(network);
  EXPECT_THROW(batcher.Enqueue(std::vector<double>(5, 0.0)),
               std::invalid_argument);
  batcher.Enqueue(std::vector<double>(6, 0.0));
  EXPECT_THROW(batcher.Result(0), std::logic_error);  // not flushed yet
}

// The deployment-path parity: decoding a batched Q-row through the agent
// must equal the agent's own greedy SelectAction.
TEST(InferenceBatcher, GreedyDecodeMatchesSelectAction) {
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const std::size_t feature_width = 12;
  rl::DqnConfig config;
  config.hidden_units = {16, 16};
  rl::DqnAgent agent(feature_width, home.codec(), config);
  const std::vector<bool> mask(home.codec().mini_action_count(), true);

  InferenceBatcher batcher(agent.network());
  const auto rows = MakeRows(10, feature_width, 31);
  for (const auto& row : rows) batcher.Enqueue(row);
  batcher.Flush();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const fsm::ActionVector batched =
        agent.GreedyActionFromQ(batcher.Result(i), mask);
    const fsm::ActionVector direct = agent.SelectAction(rows[i], mask, true);
    EXPECT_EQ(batched, direct) << "query " << i;
  }
}

// The §13 fix regression: a Flush must hold no lock across its forwards.
// Park batcher A mid-flush via the test seam and prove that (a) a second
// tenant's batcher completes a full cycle, (b) Enqueue on A itself
// succeeds and lands in the NEXT window, and (c) A's in-flight tickets
// stay unredeemable until the deposit — all while A's GEMMs are "running".
TEST(InferenceBatcher, FlushDoesNotSerializeOtherTenantsOrEnqueue) {
  const neural::Network network_a = MakeNetwork(6, 4, 5);
  const neural::Network network_b = MakeNetwork(6, 4, 50);
  InferenceBatcher a(network_a);
  InferenceBatcher b(network_b);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool parked = false;
  bool released = false;
  a.SetFlushHook([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return released; });
  });

  const auto rows = MakeRows(4, 6, 21);
  for (std::size_t i = 0; i < 3; ++i) a.Enqueue(rows[i]);
  std::thread flusher([&] { a.Flush(); });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return parked; });
  }

  // (a) Another tenant's batcher is fully live while A's flush is parked.
  const std::size_t b_ticket = b.Enqueue(rows[0]);
  b.Flush();
  EXPECT_EQ(b.Result(b_ticket), network_b.PredictOne(rows[0]));

  // (b) A itself accepts new work mid-flight; the row belongs to the next
  // window, so the in-flight flush must not answer it.
  const std::size_t late_ticket = a.Enqueue(rows[3]);
  EXPECT_EQ(late_ticket, 3u);
  EXPECT_EQ(a.pending(), 1u);

  // (c) In-flight tickets are not redeemable before the deposit.
  EXPECT_THROW(a.Result(0), std::logic_error);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  flusher.join();

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.Result(i), network_a.PredictOne(rows[i]));
  }
  EXPECT_THROW(a.Result(late_ticket), std::logic_error);  // still pending
  EXPECT_EQ(a.pending(), 1u);
  a.SetFlushHook(nullptr);
  a.Flush();
  EXPECT_EQ(a.Result(late_ticket), network_a.PredictOne(rows[3]));
}

// Reset while a flush is in flight discards that window: the parked
// flush's deposit must vanish instead of landing in the new window's
// buffers (the generation guard), and the batcher stays fully usable.
TEST(InferenceBatcher, ResetDuringInFlightFlushDiscardsItsWindow) {
  const neural::Network network = MakeNetwork(6, 4, 5);
  InferenceBatcher batcher(network);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool parked = false;
  bool released = false;
  batcher.SetFlushHook([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return released; });
  });

  const auto rows = MakeRows(4, 6, 43);
  for (std::size_t i = 0; i < 2; ++i) batcher.Enqueue(rows[i]);
  std::thread flusher([&] { batcher.Flush(); });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return parked; });
  }
  batcher.Reset();
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  flusher.join();

  // The discarded window left nothing behind.
  EXPECT_EQ(batcher.ticket_count(), 0u);
  EXPECT_THROW(batcher.Result(0), std::logic_error);

  // And the fresh window works end to end.
  batcher.SetFlushHook(nullptr);
  const std::size_t ticket = batcher.Enqueue(rows[2]);
  EXPECT_EQ(ticket, 0u);
  batcher.Flush();
  EXPECT_EQ(batcher.Result(ticket), network.PredictOne(rows[2]));
}

}  // namespace
}  // namespace jarvis::runtime
