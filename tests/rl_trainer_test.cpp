// Tests for the training-loop extensions: demonstration episodes, the
// optional target network, sticky exploration, per-episode epsilon decay,
// and violation accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fsm/device_library.h"
#include "rl/dqn_agent.h"
#include "rl/trainer.h"
#include "sim/testbed.h"

namespace jarvis::rl {
namespace {

class TrainerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 1500;
    testbed_ = new sim::Testbed(config);
    learner_ = new spl::SafetyPolicyLearner(testbed_->home_a(),
                                            spl::SplConfig{});
    learner_->Learn(testbed_->HomeALearningEpisodes(),
                    testbed_->BuildTrainingSet());
    // Day 17: deep winter, the sustained-heating stress case.
    natural_ = new sim::DayTrace(testbed_->home_b_data().Day(17));
  }
  static void TearDownTestSuite() {
    delete natural_;
    delete learner_;
    delete testbed_;
    natural_ = nullptr;
    learner_ = nullptr;
    testbed_ = nullptr;
  }

  IoTEnv MakeEnv(RewardWeights weights = {}) const {
    IoTEnvConfig config;
    config.weights = weights;
    return IoTEnv(testbed_->home_a(), *natural_, sim::ThermalConfig{},
                  learner_, config);
  }

  static sim::Testbed* testbed_;
  static spl::SafetyPolicyLearner* learner_;
  static sim::DayTrace* natural_;
};

sim::Testbed* TrainerFixture::testbed_ = nullptr;
spl::SafetyPolicyLearner* TrainerFixture::learner_ = nullptr;
sim::DayTrace* TrainerFixture::natural_ = nullptr;

TEST_F(TrainerFixture, DemonstrationHeatsAColdOccupiedHouse) {
  IoTEnv env = MakeEnv();
  env.Reset();
  const auto& home = testbed_->home_a();
  const auto thermostat = home.DeviceIdByLabel("thermostat");
  // Walk to an occupied minute; on the winter day the house cools fast
  // with the heater off, so the demo must call for heat within the first
  // few hours.
  bool heated = false;
  while (!env.done() && env.current_minute() < 6 * 60) {
    const auto demo = env.DemonstrationAction();
    const auto idx = static_cast<std::size_t>(thermostat);
    if (demo[idx] != fsm::kNoAction &&
        home.device(thermostat).action_name(demo[idx]) == "increase_temp") {
      heated = true;
      break;
    }
    env.Step(demo);
  }
  EXPECT_TRUE(heated);
}

TEST_F(TrainerFixture, DemonstrationNeverTouchesResidentDevices) {
  IoTEnv env = MakeEnv();
  env.Reset();
  const auto& home = testbed_->home_a();
  const std::vector<std::string> resident_owned = {
      "lock", "fridge", "oven", "tv", "coffee_maker", "door_sensor",
      "temp_sensor"};
  while (!env.done()) {
    const auto demo = env.DemonstrationAction();
    for (const auto& label : resident_owned) {
      const auto id = home.DeviceIdByLabel(label);
      EXPECT_EQ(demo[static_cast<std::size_t>(id)], fsm::kNoAction)
          << label << " is resident-owned";
    }
    env.Step(demo);
  }
}

TEST_F(TrainerFixture, DemonstrationEpisodeOutperformsDoingNothing) {
  IoTEnv env = MakeEnv();
  env.Reset();
  while (!env.done()) env.Step(env.DemonstrationAction());
  const double demo_reward = env.cumulative_reward();
  const auto demo_metrics = env.Metrics();

  env.Reset();
  const fsm::ActionVector noop(testbed_->home_a().device_count(),
                               fsm::kNoAction);
  while (!env.done()) env.Step(noop);
  EXPECT_GT(demo_reward, env.cumulative_reward())
      << "the app-policy demonstration must beat do-nothing on a winter day";
  EXPECT_LT(demo_metrics.comfort_error_c_min,
            env.Metrics().comfort_error_c_min / 2.0);
}

TEST_F(TrainerFixture, TrainWithDemonstrationsKeepsComfortBasin) {
  IoTEnv env = MakeEnv(RewardWeights::Sweep("temp", 0.5));
  DqnConfig dqn;
  dqn.seed = 99;  // a seed that historically fell into the cold basin
  DqnAgent agent(env.feature_width(), testbed_->home_a().codec(), dqn);
  TrainerConfig config;
  config.episodes = 16;
  config.demonstration_episodes = 2;
  const TrainResult result = Train(env, agent, config);
  // The greedy policy must be no worse than the raw demonstration.
  env.Reset();
  while (!env.done()) env.Step(env.DemonstrationAction());
  EXPECT_GT(result.greedy_reward, env.cumulative_reward() * 0.9);
}

TEST_F(TrainerFixture, ViolationEventsBoundDistinctPatterns) {
  IoTEnvConfig config;
  config.constrained = false;
  IoTEnv env(testbed_->home_a(), *natural_, sim::ThermalConfig{}, learner_,
             config);
  DqnConfig dqn;
  dqn.epsilon = 1.0;
  DqnAgent agent(env.feature_width(), testbed_->home_a().codec(), dqn);
  env.Reset();
  while (!env.done()) {
    env.Step(agent.SelectAction(env.Features(), env.SafeSlotMask(), false));
  }
  EXPECT_GT(env.violation_events(), 0u);
  EXPECT_LE(env.violations(), env.violation_events())
      << "distinct patterns can never exceed raw events";
}

TEST_F(TrainerFixture, TargetNetworkStillLearnsBandit) {
  const auto& codec = testbed_->home_a().codec();
  DqnConfig config;
  config.batch_size = 4;
  config.gamma = 0.0;
  config.epsilon = 0.0;
  config.target_sync_interval = 10;
  DqnAgent agent(2, codec, config);
  const std::vector<double> features = {1.0, 0.0};
  const std::size_t good = codec.MiniActionSlot({2, 1});
  const std::size_t bad = codec.MiniActionSlot({2, 0});
  for (int i = 0; i < 100; ++i) {
    Experience positive{features, {good}, 1.0, {}, {}, true};
    Experience negative{features, {bad}, -1.0, {}, {}, true};
    agent.Remember(std::move(positive));
    agent.Remember(std::move(negative));
  }
  for (int i = 0; i < 400; ++i) agent.Replay();
  const auto q = agent.QValues(features);
  EXPECT_GT(q[good], 0.5);
  EXPECT_LT(q[bad], -0.5);
}

TEST_F(TrainerFixture, DecayEpsilonOnceRespectsFloor) {
  DqnConfig config;
  config.epsilon = 0.2;
  config.epsilon_decay = 0.5;
  config.epsilon_min = 0.06;
  DqnAgent agent(2, testbed_->home_a().codec(), config);
  agent.DecayEpsilonOnce();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);
  agent.DecayEpsilonOnce();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.06);
  agent.DecayEpsilonOnce();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.06);
}

TEST_F(TrainerFixture, StickyExplorationProducesStreaks) {
  const auto& codec = testbed_->home_a().codec();
  DqnConfig config;
  config.epsilon = 1.0;  // always exploring
  config.explore_repeat_prob = 0.9;
  DqnAgent sticky(4, codec, config);
  config.explore_repeat_prob = 0.0;
  DqnAgent uniform(4, codec, config);

  const std::vector<double> features = {0.1, 0.2, 0.3, 0.4};
  const std::vector<bool> mask(codec.mini_action_count(), true);
  auto repeat_rate = [&](DqnAgent& agent) {
    fsm::ActionVector previous;
    int repeats = 0, total = 0;
    for (int i = 0; i < 300; ++i) {
      const auto action = agent.SelectAction(features, mask, false);
      if (!previous.empty()) {
        for (std::size_t d = 0; d < action.size(); ++d) {
          repeats += action[d] == previous[d] ? 1 : 0;
          ++total;
        }
      }
      previous = action;
    }
    return static_cast<double>(repeats) / total;
  };
  EXPECT_GT(repeat_rate(sticky), repeat_rate(uniform) + 0.2);
}

TEST_F(TrainerFixture, DivergenceRecoveryRestoresWeightsAndPurges) {
  IoTEnv env = MakeEnv();
  const auto& codec = testbed_->home_a().codec();
  DqnConfig dqn;
  dqn.batch_size = 8;
  DqnAgent agent(env.feature_width(), codec, dqn);

  // Poison the replay memory before training: infinite rewards make the
  // very first replay pass produce a non-finite loss.
  for (int i = 0; i < 16; ++i) {
    Experience poison;
    poison.features.assign(env.feature_width(), 0.5);
    poison.taken_slots = {0};
    poison.reward = std::numeric_limits<double>::infinity();
    poison.next_features.assign(env.feature_width(), 0.0);
    poison.next_mask.assign(codec.mini_action_count(), false);
    poison.done = true;
    agent.Remember(poison);
  }

  TrainerConfig config;
  config.episodes = 2;
  config.demonstration_episodes = 1;
  const TrainResult result = Train(env, agent, config);

  EXPECT_GE(result.divergence_recoveries, 1u);
  EXPECT_GE(result.poisoned_experiences_purged, 16u);
  EXPECT_FALSE(agent.diverged());
  // The restored weights produce finite values end to end.
  env.Reset();
  for (double q : agent.QValues(env.Features())) {
    EXPECT_TRUE(std::isfinite(q));
  }
  EXPECT_TRUE(std::isfinite(result.greedy_reward));
  EXPECT_EQ(result.episode_rewards.size(), 2u);
}

TEST_F(TrainerFixture, ReseedExplorationRestartsSchedule) {
  DqnConfig config;
  config.epsilon = 0.8;
  DqnAgent agent(2, testbed_->home_a().codec(), config);
  agent.DecayEpsilonOnce();
  ASSERT_LT(agent.epsilon(), 0.8);
  agent.ReseedExploration(1234);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.8);
  EXPECT_FALSE(agent.diverged());
}

TEST_F(TrainerFixture, DemonstrationEpisodesConfigurable) {
  IoTEnv env = MakeEnv();
  DqnConfig dqn;
  DqnAgent agent(env.feature_width(), testbed_->home_a().codec(), dqn);
  TrainerConfig config;
  config.episodes = 3;
  config.demonstration_episodes = 0;  // pure self-play still works
  const TrainResult result = Train(env, agent, config);
  EXPECT_EQ(result.episode_rewards.size(), 3u);
}

TEST_F(TrainerFixture, RepublishEveryNEpisodesFiresOnCadence) {
  IoTEnv env = MakeEnv();
  DqnAgent agent(env.feature_width(), testbed_->home_a().codec(),
                 DqnConfig{});
  TrainerConfig config;
  config.episodes = 6;
  config.demonstration_episodes = 1;
  config.republish.every_episodes = 2;
  std::vector<int> fired_episodes;
  const TrainResult result = Train(
      env, agent, config, nullptr,
      [&](const EpisodeProgress& progress, const neural::Network&) {
        fired_episodes.push_back(progress.episode);
      });
  EXPECT_EQ(result.republishes, fired_episodes.size());
  // Every 2 completed (non-aborted) episodes fires once; aborted episodes
  // never count toward the cadence (their weights were just rolled back).
  const std::size_t completed =
      static_cast<std::size_t>(config.episodes) -
      result.divergence_recoveries;
  EXPECT_EQ(result.republishes, completed / 2);
  for (std::size_t i = 1; i < fired_episodes.size(); ++i) {
    EXPECT_LT(fired_episodes[i - 1], fired_episodes[i]);
  }
}

TEST_F(TrainerFixture, RepublishDisabledPolicyNeverFires) {
  IoTEnv env = MakeEnv();
  DqnAgent agent(env.feature_width(), testbed_->home_a().codec(),
                 DqnConfig{});
  TrainerConfig config;
  config.episodes = 3;
  ASSERT_FALSE(config.republish.enabled());
  std::size_t hook_calls = 0;
  const TrainResult result =
      Train(env, agent, config, nullptr,
            [&](const EpisodeProgress&, const neural::Network&) {
              ++hook_calls;
            });
  EXPECT_EQ(hook_calls, 0u);
  EXPECT_EQ(result.republishes, 0u);
}

TEST_F(TrainerFixture, RepublishTrajectoryBitIdenticalWithHook) {
  // The hook draws no RNG and the trainer takes no decision from it, so
  // streaming must not perturb training: rewards, greedy evaluation, and
  // the learnt Q-function are bit-identical with and without a hook.
  TrainerConfig config;
  config.episodes = 4;
  config.demonstration_episodes = 1;

  IoTEnv plain_env = MakeEnv();
  DqnAgent plain(plain_env.feature_width(), testbed_->home_a().codec(),
                 DqnConfig{});
  const TrainResult plain_result = Train(plain_env, plain, config);

  config.republish.every_episodes = 1;
  IoTEnv streamed_env = MakeEnv();
  DqnAgent streamed(streamed_env.feature_width(),
                    testbed_->home_a().codec(), DqnConfig{});
  std::size_t publishes = 0;
  const TrainResult streamed_result =
      Train(streamed_env, streamed, config, nullptr,
            [&](const EpisodeProgress&, const neural::Network& network) {
              ++publishes;
              // The live network is readable during the hook.
              (void)network;
            });

  EXPECT_GE(publishes, 1u);
  EXPECT_EQ(plain_result.episode_rewards, streamed_result.episode_rewards);
  EXPECT_DOUBLE_EQ(plain_result.final_loss, streamed_result.final_loss);
  EXPECT_DOUBLE_EQ(plain_result.greedy_reward,
                   streamed_result.greedy_reward);
  const std::vector<double> probe(plain_env.feature_width(), 0.25);
  EXPECT_EQ(plain.QValues(probe), streamed.QValues(probe));
}

TEST_F(TrainerFixture, RepublishOnLossImprovementIsMonotone) {
  IoTEnv env = MakeEnv();
  DqnAgent agent(env.feature_width(), testbed_->home_a().codec(),
                 DqnConfig{});
  TrainerConfig config;
  config.episodes = 8;
  config.demonstration_episodes = 1;
  config.republish.on_loss_improvement = true;
  std::vector<double> losses;
  const TrainResult result =
      Train(env, agent, config, nullptr,
            [&](const EpisodeProgress& progress, const neural::Network&) {
              losses.push_back(progress.loss);
            });
  EXPECT_EQ(result.republishes, losses.size());
  EXPECT_GE(losses.size(), 1u);  // the first finite loss beats +infinity
  for (const double loss : losses) EXPECT_TRUE(std::isfinite(loss));
  for (std::size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LT(losses[i], losses[i - 1]);
  }
}

}  // namespace
}  // namespace jarvis::rl
