// The cross-tenant aggregation battery (DESIGN.md §16): bit-exactness of
// aggregated answers against the jobs=1 sequential oracle, exact flush
// arithmetic for the deadline/max_batch policy, weight-version cutover
// (no query ever sees mixed versions), shutdown answering every queued
// query exactly once, and the MPSC conservation law under producer +
// publisher contention. Labeled `runtime`, so the whole battery runs under
// TSan in CI.
#include "runtime/aggregation_service.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fsm/device_library.h"
#include "runtime/fleet.h"
#include "sim/resident.h"
#include "util/rng.h"
#include "util/timeofday.h"

namespace jarvis::runtime {
namespace {

std::unique_ptr<neural::Network> MakeNetwork(std::size_t inputs,
                                             std::size_t outputs,
                                             std::uint64_t seed) {
  return std::make_unique<neural::Network>(
      inputs,
      std::vector<neural::LayerSpec>{{16, neural::Activation::kRelu},
                                     {12, neural::Activation::kTanh},
                                     {outputs, neural::Activation::kIdentity}},
      neural::Loss::kMeanSquaredError, std::make_unique<neural::Adam>(0.01),
      util::Rng(seed));
}

std::vector<std::vector<double>> MakeRows(std::size_t count,
                                          std::size_t width,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> rows(count);
  for (auto& row : rows) {
    row.resize(width);
    for (double& x : row) x = rng.NextGaussian();
  }
  return rows;
}

AggregationConfig ManualConfig(std::size_t max_batch = 8,
                               std::size_t capacity = 4096) {
  AggregationConfig config;
  config.manual = true;
  config.max_batch = max_batch;
  config.queue_capacity = capacity;
  return config;
}

// Clones answer bit-for-bit what the source network answers, and the
// aggregated path returns exactly those doubles.
TEST(AggregationService, AnswersAreBitIdenticalToSourcePredictOne) {
  const auto network = MakeNetwork(6, 4, 11);
  AggregationService service(ManualConfig());
  service.PublishWeights(0, *network);
  const auto rows = MakeRows(20, 6, 22);

  const auto ticket = service.Submit(0, rows);
  ASSERT_TRUE(ticket.has_value());
  service.FlushNow();
  const AggregatedResult result = service.Wait(*ticket);
  ASSERT_EQ(result.rows.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    // Exact FP equality, not a tolerance: the aggregated row must be
    // bit-for-bit the source network's single-row result.
    EXPECT_EQ(result.rows[i], network->PredictOne(rows[i])) << "row " << i;
  }
}

// Chunk arithmetic pinned exactly (manual mode removes all timing): 20
// rows through max_batch=8 is exactly 3 GEMMs of 8+8+4.
TEST(AggregationService, ManualFlushChunkArithmeticIsExact) {
  const auto network = MakeNetwork(6, 4, 5);
  AggregationService service(ManualConfig(/*max_batch=*/8));
  service.PublishWeights(0, *network);
  const auto ticket = service.Submit(0, MakeRows(20, 6, 3));
  ASSERT_TRUE(ticket.has_value());
  service.FlushNow();
  service.Wait(*ticket);

  const AggregationStats stats = service.stats();
  EXPECT_EQ(stats.submitted_queries, 1u);
  EXPECT_EQ(stats.submitted_rows, 20u);
  EXPECT_EQ(stats.answered_queries, 1u);
  EXPECT_EQ(stats.rejected_queries, 0u);
  EXPECT_EQ(stats.flushes_manual, 1u);
  EXPECT_EQ(stats.gemm_batches, 3u);  // 8 + 8 + 4
  EXPECT_EQ(stats.rows_inferred, 20u);
  EXPECT_EQ(stats.max_gemm_rows, 8u);
}

// max_batch side of the flush policy, threaded: with an unreachable
// deadline, the flusher fires exactly once, exactly when the 8th row
// arrives, and coalesces all 8 single-row queries into one GEMM.
TEST(AggregationService, MaxBatchFlushFiresExactlyOnce) {
  const auto network = MakeNetwork(6, 4, 7);
  AggregationConfig config;
  config.max_batch = 8;
  config.deadline_us = 60'000'000;  // one minute: never reached
  AggregationService service(config);
  service.PublishWeights(0, *network);

  const auto rows = MakeRows(8, 6, 9);
  std::vector<std::uint64_t> tickets;
  for (const auto& row : rows) {
    const auto ticket = service.Submit(0, {row});
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(*ticket);
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const AggregatedResult result = service.Wait(tickets[i]);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0], network->PredictOne(rows[i])) << "query " << i;
  }
  const AggregationStats stats = service.stats();
  EXPECT_EQ(stats.flushes_max_batch, 1u);
  EXPECT_EQ(stats.flushes_deadline, 0u);
  EXPECT_EQ(stats.answered_queries, 8u);
  EXPECT_EQ(stats.max_gemm_rows, 8u);  // all 8 queries shared one GEMM
}

// Deadline side: with an unreachable max_batch, only the deadline can
// flush — and it must, answering everything without a full batch.
TEST(AggregationService, DeadlineFlushFiresWithoutFullBatch) {
  const auto network = MakeNetwork(6, 4, 13);
  AggregationConfig config;
  config.max_batch = 1000;
  config.deadline_us = 1000;  // 1ms
  AggregationService service(config);
  service.PublishWeights(0, *network);

  const auto rows = MakeRows(3, 6, 17);
  for (const auto& row : rows) {
    const auto result = service.Infer(0, {row});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->rows[0], network->PredictOne(row));
  }
  const AggregationStats stats = service.stats();
  EXPECT_EQ(stats.flushes_max_batch, 0u);
  EXPECT_GE(stats.flushes_deadline, 1u);
  EXPECT_EQ(stats.answered_queries, 3u);
  EXPECT_EQ(stats.rows_inferred, 3u);
}

// Version cutover: a query is answered entirely by the version current at
// its submit — publishes that land later never bleed in, even within a
// multi-row query, and concurrent versions coexist in one drain.
TEST(AggregationService, WeightVersionCutoverNeverMixesVersions) {
  const auto network_a = MakeNetwork(6, 4, 100);
  const auto network_b = MakeNetwork(6, 4, 200);
  const auto network_c = MakeNetwork(6, 4, 300);
  AggregationService service(ManualConfig());

  const std::uint64_t v1 = service.PublishWeights(0, *network_a);
  const auto rows1 = MakeRows(2, 6, 1);
  const auto q1 = service.Submit(0, rows1);

  const std::uint64_t v2 = service.PublishWeights(0, *network_b);
  EXPECT_EQ(service.weight_version(0), v2);
  const auto rows2 = MakeRows(4, 6, 2);
  const auto q2 = service.Submit(0, rows2);

  // A publish AFTER q2 was submitted must not affect q2's answer.
  const std::uint64_t v3 = service.PublishWeights(0, *network_c);
  service.FlushNow();

  const AggregatedResult r1 = service.Wait(*q1);
  EXPECT_EQ(r1.version, v1);
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(r1.rows[i], network_a->PredictOne(rows1[i]));
  }
  const AggregatedResult r2 = service.Wait(*q2);
  EXPECT_EQ(r2.version, v2);
  for (std::size_t i = 0; i < rows2.size(); ++i) {
    EXPECT_EQ(r2.rows[i], network_b->PredictOne(rows2[i]))
        << "row " << i << " answered by a mixed/later version";
  }
  EXPECT_EQ(service.weight_version(0), v3);
  // Both versions shared the drain: two GEMMs (one per version group).
  EXPECT_EQ(service.stats().gemm_batches, 2u);
}

// Shutdown with queued queries answers every one of them exactly once,
// then rejects new traffic; the conservation law closes exactly.
TEST(AggregationService, ShutdownAnswersEveryQueuedQueryExactlyOnce) {
  const auto network = MakeNetwork(6, 4, 31);
  AggregationConfig config;
  config.max_batch = 1000;          // unreachable
  config.deadline_us = 60'000'000;  // unreachable
  AggregationService service(config);
  service.PublishWeights(0, *network);

  const auto rows = MakeRows(10, 6, 37);
  std::vector<std::uint64_t> tickets;
  for (const auto& row : rows) {
    const auto ticket = service.Submit(0, {row});
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(*ticket);
  }
  service.Shutdown();

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const AggregatedResult result = service.Wait(tickets[i]);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0], network->PredictOne(rows[i]));
    // Exactly once: the ticket is consumed.
    EXPECT_THROW(service.Wait(tickets[i]), std::logic_error);
  }
  EXPECT_FALSE(service.Submit(0, {rows[0]}).has_value());

  const AggregationStats stats = service.stats();
  EXPECT_EQ(stats.flushes_shutdown, 1u);
  EXPECT_EQ(stats.answered_queries, 10u);
  EXPECT_EQ(stats.rejected_queries, 1u);
  EXPECT_EQ(stats.submitted_queries,
            stats.answered_queries + stats.rejected_queries);
}

TEST(AggregationService, RejectsOnCapacityUnknownTenantAndBadRows) {
  const auto network = MakeNetwork(6, 4, 41);
  AggregationService service(ManualConfig(/*max_batch=*/8, /*capacity=*/4));
  service.PublishWeights(0, *network);

  // Unknown tenant: rejected, not thrown — backpressure semantics.
  EXPECT_FALSE(service.Submit(1, MakeRows(1, 6, 1)).has_value());
  // Contract violations throw and count as neither answered nor rejected.
  EXPECT_THROW(service.Submit(0, {}), std::invalid_argument);
  EXPECT_THROW(service.Submit(0, MakeRows(1, 5, 1)), std::invalid_argument);

  const auto full = service.Submit(0, MakeRows(4, 6, 2));
  ASSERT_TRUE(full.has_value());
  // Queue at row capacity: reject, never block or drop silently.
  EXPECT_FALSE(service.Submit(0, MakeRows(1, 6, 3)).has_value());
  service.FlushNow();
  service.Wait(*full);
  // Capacity freed by the flush.
  EXPECT_TRUE(service.Submit(0, MakeRows(1, 6, 4)).has_value());

  const AggregationStats stats = service.stats();
  EXPECT_EQ(stats.rejected_queries, 2u);
  EXPECT_EQ(stats.submitted_queries, 4u);
  EXPECT_THROW(service.Wait(9999), std::logic_error);
}

// Satellite: many producers hammer the MPSC queue while a publisher keeps
// cutting weight versions. Under TSan this is the data-race probe for the
// whole service; the assertions pin the conservation law and that every
// answer matches the version that answered it — exactly.
TEST(AggregationService, ConcurrentProducersAndPublishesConserveAndStayExact) {
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kProducers = 6;
  constexpr std::size_t kQueriesPerProducer = 30;
  constexpr std::size_t kPublishes = 25;

  AggregationConfig config;
  config.max_batch = 16;
  config.deadline_us = 100;
  config.queue_capacity = 64;
  AggregationService service(config);

  // Every network ever published stays alive here so answers can be
  // verified after the fact. `by_version` maps the service-assigned
  // version to its source network (guarded: the publisher writes it while
  // producers run — but producers only read it after the join below).
  std::vector<std::unique_ptr<neural::Network>> networks;
  std::map<std::uint64_t, const neural::Network*> by_version;
  std::mutex map_mutex;
  for (std::size_t t = 0; t < kTenants; ++t) {
    networks.push_back(MakeNetwork(6, 4, 1000 + t));
    const std::uint64_t version = service.PublishWeights(t, *networks.back());
    by_version[version] = networks.back().get();
  }

  std::thread publisher([&] {
    for (std::size_t k = 0; k < kPublishes; ++k) {
      networks.push_back(MakeNetwork(6, 4, 2000 + k));
      const neural::Network* network = networks.back().get();
      const std::uint64_t version =
          service.PublishWeights(k % kTenants, *network);
      std::lock_guard<std::mutex> lock(map_mutex);
      by_version[version] = network;
    }
  });

  struct Answer {
    std::size_t tenant;
    std::uint64_t version;
    std::vector<double> row;
    std::vector<double> result;
  };
  std::vector<std::vector<Answer>> answers(kProducers);
  std::vector<std::size_t> rejected(kProducers, 0);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(500 + p);
      for (std::size_t q = 0; q < kQueriesPerProducer; ++q) {
        const std::size_t tenant = rng.NextIndex(kTenants);
        std::vector<double> row(6);
        for (double& x : row) x = rng.NextGaussian();
        const auto result = service.Infer(tenant, {row});
        if (!result.has_value()) {
          ++rejected[p];
          continue;
        }
        ASSERT_EQ(result->rows.size(), 1u);
        answers[p].push_back({tenant, result->version, row, result->rows[0]});
      }
    });
  }
  for (auto& producer : producers) producer.join();
  publisher.join();
  service.Shutdown();

  const AggregationStats stats = service.stats();
  EXPECT_EQ(stats.submitted_queries, kProducers * kQueriesPerProducer);
  // The conservation law: nothing lost, nothing answered twice.
  EXPECT_EQ(stats.submitted_queries,
            stats.answered_queries + stats.rejected_queries);
  std::size_t rejected_total = 0;
  for (std::size_t p = 0; p < kProducers; ++p) rejected_total += rejected[p];
  EXPECT_EQ(stats.rejected_queries, rejected_total);
  EXPECT_EQ(stats.answered_queries,
            kProducers * kQueriesPerProducer - rejected_total);

  // Exactness per answering version, verified single-threaded (PredictOne
  // uses the source network's scratch).
  for (const auto& per_producer : answers) {
    for (const Answer& answer : per_producer) {
      const auto it = by_version.find(answer.version);
      ASSERT_NE(it, by_version.end());
      EXPECT_EQ(answer.result, it->second->PredictOne(answer.row));
    }
  }

  // Version monotonicity: versions are pinned AT SUBMIT and publishes only
  // move a tenant's current version forward, so the versions one producer
  // observes for one tenant never go backwards — a racing publish can skip
  // it ahead, never behind.
  for (const auto& per_producer : answers) {
    std::map<std::size_t, std::uint64_t> last_seen;
    for (const Answer& answer : per_producer) {
      const auto it = last_seen.find(answer.tenant);
      if (it != last_seen.end()) {
        EXPECT_GE(answer.version, it->second)
            << "tenant " << answer.tenant << " answered with an older "
            << "version than an earlier query from the same producer";
      }
      last_seen[answer.tenant] = answer.version;
    }
  }
}

// Fairness-aware drain (round-robin, the default): in one flush cohort
// the per-tenant GEMM chunks are interleaved in rounds, so a tenant with
// one row is answered after ONE chunk of the 12-row tenant instead of
// waiting behind all three. The drain hook observes the exact chunk
// order; answers stay bit-exact either way.
TEST(AggregationService, FairnessRoundRobinInterleavesTenantChunks) {
  const auto heavy = MakeNetwork(6, 4, 31);
  const auto light = MakeNetwork(6, 4, 32);
  AggregationConfig config = ManualConfig(/*max_batch=*/4);
  config.fairness = DrainFairness::kRoundRobin;
  AggregationService service(config);
  service.PublishWeights(0, *heavy);
  service.PublishWeights(1, *light);

  std::vector<std::pair<std::size_t, std::size_t>> chunk_order;
  service.SetDrainHook([&](std::size_t tenant, std::size_t rows) {
    chunk_order.push_back({tenant, rows});
  });

  const auto heavy_rows = MakeRows(12, 6, 33);
  const auto light_rows = MakeRows(1, 6, 34);
  const auto heavy_ticket = service.Submit(0, heavy_rows);
  const auto light_ticket = service.Submit(1, light_rows);
  ASSERT_TRUE(heavy_ticket.has_value());
  ASSERT_TRUE(light_ticket.has_value());
  service.FlushNow();

  // Round 1 takes one chunk from each tenant; the heavy tenant's leftover
  // chunks fill later rounds. Within tenant 0 the order is untouched.
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 4}, {1, 1}, {0, 4}, {0, 4}};
  EXPECT_EQ(chunk_order, expected);

  const AggregatedResult heavy_result = service.Wait(*heavy_ticket);
  const AggregatedResult light_result = service.Wait(*light_ticket);
  for (std::size_t i = 0; i < heavy_rows.size(); ++i) {
    EXPECT_EQ(heavy_result.rows[i], heavy->PredictOne(heavy_rows[i]));
  }
  EXPECT_EQ(light_result.rows[0], light->PredictOne(light_rows[0]));
  EXPECT_EQ(service.stats().gemm_batches, 4u);  // same GEMMs as FIFO
}

// The FIFO baseline for the same workload: chunks stay in version order,
// so the light tenant drains last. (This is the pre-fairness behavior,
// kept selectable for strict-arrival-order consumers.)
TEST(AggregationService, FairnessFifoKeepsArrivalOrder) {
  const auto heavy = MakeNetwork(6, 4, 31);
  const auto light = MakeNetwork(6, 4, 32);
  AggregationConfig config = ManualConfig(/*max_batch=*/4);
  config.fairness = DrainFairness::kFifo;
  AggregationService service(config);
  service.PublishWeights(0, *heavy);
  service.PublishWeights(1, *light);

  std::vector<std::pair<std::size_t, std::size_t>> chunk_order;
  service.SetDrainHook([&](std::size_t tenant, std::size_t rows) {
    chunk_order.push_back({tenant, rows});
  });

  const auto heavy_ticket = service.Submit(0, MakeRows(12, 6, 33));
  const auto light_ticket = service.Submit(1, MakeRows(1, 6, 34));
  ASSERT_TRUE(heavy_ticket.has_value());
  ASSERT_TRUE(light_ticket.has_value());
  service.FlushNow();

  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 4}, {0, 4}, {0, 4}, {1, 1}};
  EXPECT_EQ(chunk_order, expected);
  service.Wait(*heavy_ticket);
  service.Wait(*light_ticket);
  EXPECT_EQ(service.stats().gemm_batches, 4u);
}

// Priority beats tenant id in the round-robin round order: a
// higher-priority tenant's chunk leads every round it participates in.
TEST(AggregationService, FairnessPriorityOrdersRounds) {
  const auto heavy = MakeNetwork(6, 4, 31);
  const auto light = MakeNetwork(6, 4, 32);
  AggregationConfig config = ManualConfig(/*max_batch=*/4);
  config.fairness = DrainFairness::kRoundRobin;
  AggregationService service(config);
  service.PublishWeights(0, *heavy);
  service.PublishWeights(1, *light);
  service.SetTenantPriority(1, 10);

  std::vector<std::pair<std::size_t, std::size_t>> chunk_order;
  service.SetDrainHook([&](std::size_t tenant, std::size_t rows) {
    chunk_order.push_back({tenant, rows});
  });

  const auto heavy_ticket = service.Submit(0, MakeRows(12, 6, 33));
  const auto light_ticket = service.Submit(1, MakeRows(1, 6, 34));
  ASSERT_TRUE(heavy_ticket.has_value());
  ASSERT_TRUE(light_ticket.has_value());
  service.FlushNow();

  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {1, 1}, {0, 4}, {0, 4}, {0, 4}};
  EXPECT_EQ(chunk_order, expected);
  service.Wait(*heavy_ticket);
  service.Wait(*light_ticket);
}

// The batch-size autotuner: a window of all-full chunks doubles the
// effective max_batch (capped); a window of tiny chunks halves it
// (floored). All transitions are exact arithmetic on the chunk history.
TEST(AggregationService, AutotunerRaisesAndLowersEffectiveMaxBatch) {
  const auto network = MakeNetwork(6, 4, 41);
  AggregationConfig config = ManualConfig(/*max_batch=*/4);
  config.autotune = true;
  config.autotune_min_batch = 2;
  config.autotune_max_batch = 16;
  config.autotune_window = 2;
  AggregationService service(config);
  service.PublishWeights(0, *network);

  EXPECT_EQ(service.stats().current_max_batch, 4u);

  // 8 rows at effective=4: two full chunks -> the window is 100% full ->
  // double to 8.
  const auto big = service.Submit(0, MakeRows(8, 6, 42));
  ASSERT_TRUE(big.has_value());
  service.FlushNow();
  service.Wait(*big);
  EXPECT_EQ(service.stats().current_max_batch, 8u);
  EXPECT_EQ(service.stats().autotune_raises, 1u);
  EXPECT_EQ(service.stats().autotune_lowers, 0u);

  // Four 1-row flushes: two windows whose max row count (1) is at most a
  // quarter of the bound -> halve twice, 8 -> 4 -> 2.
  for (int i = 0; i < 4; ++i) {
    const auto small = service.Submit(0, MakeRows(1, 6, 50 + i));
    ASSERT_TRUE(small.has_value());
    service.FlushNow();
    service.Wait(*small);
  }
  EXPECT_EQ(service.stats().current_max_batch, 2u);
  EXPECT_EQ(service.stats().autotune_lowers, 2u);

  // At the floor, further tiny windows hold: 1 * 4 > 2 is false but
  // halving below autotune_min_batch is clamped.
  for (int i = 0; i < 2; ++i) {
    const auto small = service.Submit(0, MakeRows(1, 6, 60 + i));
    ASSERT_TRUE(small.has_value());
    service.FlushNow();
    service.Wait(*small);
  }
  EXPECT_EQ(service.stats().current_max_batch, 2u);
}

// The streaming-republish exactness pin: republishes land BETWEEN submits
// of the same flush cohort, and every query is answered by the exact
// network that was current at ITS submit — never the newer one, never a
// mix. This is the invariant that lets a trainer publish mid-run while
// suggest traffic is in flight.
TEST(AggregationService, RepublishWhileInflightPinsSubmitVersion) {
  AggregationService service(ManualConfig(/*max_batch=*/8));
  std::vector<std::unique_ptr<neural::Network>> generations;
  std::vector<std::uint64_t> tickets;
  std::vector<std::vector<double>> rows;
  // Five "training episodes": each publishes a new generation, then a
  // query arrives while older queries are still queued.
  for (std::size_t episode = 0; episode < 5; ++episode) {
    generations.push_back(MakeNetwork(6, 4, 70 + episode));
    service.PublishWeights(0, *generations.back());
    rows.push_back(MakeRows(1, 6, 80 + episode)[0]);
    const auto ticket = service.Submit(0, {rows.back()});
    ASSERT_TRUE(ticket.has_value());
    tickets.push_back(*ticket);
  }
  service.FlushNow();
  for (std::size_t episode = 0; episode < 5; ++episode) {
    const AggregatedResult result = service.Wait(tickets[episode]);
    ASSERT_EQ(result.rows.size(), 1u);
    // Bit-exact against the generation pinned at submit time.
    EXPECT_EQ(result.rows[0], generations[episode]->PredictOne(rows[episode]))
        << "episode " << episode;
  }
  const AggregationStats stats = service.stats();
  // One GEMM per generation: rows for different versions never mix.
  EXPECT_EQ(stats.gemm_batches, 5u);
  EXPECT_EQ(stats.weights_published, 5u);
}

runtime::FleetConfig TinyFleetConfig(std::size_t tenants, std::size_t jobs) {
  runtime::FleetConfig config;
  config.tenants = tenants;
  config.jobs = jobs;
  config.fleet_seed = 2026;
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes = 2;
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 2;
  return config;
}

// The headline pin: N tenants × a day of queries through the aggregator
// are bit-identical to the jobs=1 direct Fleet::SuggestMinutes oracle.
// Two fleets, same seed: one sequential without aggregation (the oracle),
// one parallel with the aggregation funnel attached.
TEST(FleetAggregation, DayOfQueriesBitIdenticalToSequentialOracle) {
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = 1;
  workload.benign_anomaly_samples = 100;

  Fleet oracle(home, TinyFleetConfig(3, /*jobs=*/1));
  oracle.Run(SimulatedWorkloadFactory(home, workload));

  Fleet aggregated(home, TinyFleetConfig(3, /*jobs=*/2));
  AggregationConfig config;
  config.max_batch = 64;
  config.deadline_us = 200;
  aggregated.EnableAggregation(config);
  aggregated.Run(SimulatedWorkloadFactory(home, workload));
  ASSERT_NE(aggregated.aggregator(), nullptr);

  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 2026);
  const fsm::StateVector overnight = resident.OvernightState();
  std::vector<int> minutes;
  for (int minute = 0; minute < util::kMinutesPerDay; minute += 7) {
    minutes.push_back(minute);
  }
  for (std::size_t tenant = 0; tenant < 3; ++tenant) {
    ASSERT_NE(aggregated.aggregator()->weight_version(tenant), 0u)
        << "Run did not publish tenant " << tenant;
    const auto direct = oracle.SuggestMinutes(tenant, overnight, minutes);
    const auto via_agg = aggregated.SuggestMinutes(tenant, overnight, minutes);
    ASSERT_EQ(direct.size(), via_agg.size());
    for (std::size_t i = 0; i < minutes.size(); ++i) {
      EXPECT_EQ(via_agg[i], direct[i])
          << "tenant " << tenant << " minute " << minutes[i];
    }
  }
  // The queries really went through the funnel.
  const AggregationStats stats = aggregated.aggregator()->stats();
  EXPECT_GE(stats.rows_inferred, 3u * minutes.size());
  EXPECT_GT(stats.max_gemm_rows, 1u);
}

// Concurrent suggest traffic for MANY tenants through one fleet funnel:
// every answer stays bit-identical to the per-tenant sequential answer,
// and the funnel actually coalesces across tenants.
TEST(FleetAggregation, ConcurrentCrossTenantSuggestsStayExact) {
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = 1;
  workload.benign_anomaly_samples = 100;

  Fleet fleet(home, TinyFleetConfig(3, /*jobs=*/2));
  fleet.Run(SimulatedWorkloadFactory(home, workload));

  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 2026);
  const fsm::StateVector overnight = resident.OvernightState();
  const std::vector<int> minutes = {0, 120, 480, 481, 720, 1200, 1439};
  // Direct per-tenant answers BEFORE attaching the aggregator.
  std::vector<std::vector<fsm::ActionVector>> expected;
  for (std::size_t tenant = 0; tenant < 3; ++tenant) {
    expected.push_back(fleet.SuggestMinutes(tenant, overnight, minutes));
  }

  AggregationConfig config;
  config.max_batch = 32;
  config.deadline_us = 500;
  fleet.EnableAggregation(config);

  std::vector<std::thread> threads;
  for (std::size_t tenant = 0; tenant < 3; ++tenant) {
    threads.emplace_back([&, tenant] {
      for (int iteration = 0; iteration < 5; ++iteration) {
        const auto actions = fleet.SuggestMinutes(tenant, overnight, minutes);
        ASSERT_EQ(actions.size(), minutes.size());
        for (std::size_t i = 0; i < minutes.size(); ++i) {
          EXPECT_EQ(actions[i], expected[tenant][i])
              << "tenant " << tenant << " minute " << minutes[i];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(fleet.aggregator()->stats().rows_inferred,
            3u * 5u * minutes.size());
}

}  // namespace
}  // namespace jarvis::runtime
