#include "util/timeofday.h"

#include <gtest/gtest.h>

namespace jarvis::util {
namespace {

TEST(SimTime, ComponentsDecompose) {
  const SimTime t = SimTime::FromHms(3, 14, 25);
  EXPECT_EQ(t.day(), 3);
  EXPECT_EQ(t.hour_of_day(), 14);
  EXPECT_EQ(t.minute_of_hour(), 25);
  EXPECT_EQ(t.minute_of_day(), 14 * 60 + 25);
  EXPECT_EQ(t.minutes(), 3 * kMinutesPerDay + 14 * 60 + 25);
}

TEST(SimTime, EpochIsMondayMidnight) {
  const SimTime epoch(0);
  EXPECT_EQ(epoch.day_of_week(), 0);
  EXPECT_FALSE(epoch.is_weekend());
  EXPECT_EQ(epoch.minute_of_day(), 0);
}

TEST(SimTime, WeekendDetection) {
  EXPECT_FALSE(SimTime::FromDayAndMinute(4, 0).is_weekend());  // Friday
  EXPECT_TRUE(SimTime::FromDayAndMinute(5, 0).is_weekend());   // Saturday
  EXPECT_TRUE(SimTime::FromDayAndMinute(6, 0).is_weekend());   // Sunday
  EXPECT_FALSE(SimTime::FromDayAndMinute(7, 0).is_weekend());  // Monday again
}

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime t = SimTime::FromHms(1, 23, 50);
  const SimTime later = t + 20;
  EXPECT_EQ(later.day(), 2);
  EXPECT_EQ(later.minute_of_day(), 10);
  EXPECT_EQ(later - t, 20);
  EXPECT_LT(t, later);
  EXPECT_EQ(t + 0, t);
  EXPECT_EQ((later - 20), t);
}

TEST(SimTime, NegativeSafeMinuteOfDay) {
  const SimTime t(-10);  // 10 minutes before epoch
  EXPECT_EQ(t.minute_of_day(), kMinutesPerDay - 10);
}

TEST(SimTime, Rendering) {
  EXPECT_EQ(SimTime::FromHms(2, 7, 5).ToString(), "d2 07:05");
  const std::string ts = SimTime::FromHms(0, 13, 45).ToTimestamp();
  EXPECT_EQ(ts, "2020-01-01T13:45:00");
}

TEST(CircularMinuteDistance, WrapsMidnight) {
  EXPECT_EQ(CircularMinuteDistance(10, 10), 0);
  EXPECT_EQ(CircularMinuteDistance(0, 60), 60);
  // 23:50 to 00:10 is 20 minutes the short way.
  EXPECT_EQ(CircularMinuteDistance(23 * 60 + 50, 10), 20);
  // Exactly opposite points are half a day apart.
  EXPECT_EQ(CircularMinuteDistance(0, 12 * 60), 12 * 60);
  EXPECT_EQ(CircularMinuteDistance(6 * 60, 18 * 60), 12 * 60);
}

}  // namespace
}  // namespace jarvis::util
