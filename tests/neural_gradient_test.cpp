// Gradient checking: analytic back-propagation gradients must match
// central finite differences for every activation and loss combination.
#include <gtest/gtest.h>

#include <cmath>

#include "neural/activation.h"
#include "neural/layer.h"
#include "neural/loss.h"
#include "neural/network.h"

namespace jarvis::neural {
namespace {

constexpr double kEps = 1e-5;
constexpr double kTol = 1e-6;

// Builds a tiny network, computes dLoss/dparam by backprop and by finite
// differences, and compares.
class GradientCheck
    : public ::testing::TestWithParam<std::tuple<Activation, Loss>> {};

double EvaluateLoss(Network& network, const Tensor& input,
                    const Tensor& target) {
  return ComputeLoss(network.loss(), network.Predict(input), target);
}

TEST_P(GradientCheck, BackpropMatchesFiniteDifferences) {
  const auto [activation, loss] = GetParam();
  util::Rng rng(31);
  // Output activation: sigmoid for BCE (targets in (0,1)), identity for MSE.
  const Activation output_act = loss == Loss::kBinaryCrossEntropy
                                    ? Activation::kSigmoid
                                    : Activation::kIdentity;
  Network network(3, {{4, activation}, {2, output_act}}, loss,
                  std::make_unique<Sgd>(0.1), util::Rng(7));

  const Tensor input{{0.3, -0.7, 0.5}, {0.9, 0.1, -0.2}};
  const Tensor target = loss == Loss::kBinaryCrossEntropy
                            ? Tensor{{1.0, 0.0}, {0.0, 1.0}}
                            : Tensor{{0.5, -1.0}, {1.5, 0.25}};

  // Analytic gradients: run forward+backward without an optimizer step.
  auto& layers = network.mutable_layers();
  for (auto& layer : layers) layer.ZeroGradients();
  Tensor activation_out = input;
  for (auto& layer : layers) activation_out = layer.Forward(activation_out);
  Tensor grad = LossGradient(loss, activation_out, target);
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    grad = it->Backward(grad);
  }

  // Finite differences over every parameter of every layer.
  for (std::size_t li = 0; li < layers.size(); ++li) {
    auto check_tensor = [&](Tensor& params, const Tensor& analytic) {
      for (std::size_t i = 0; i < params.mutable_data().size(); ++i) {
        double& p = params.mutable_data()[i];
        const double saved = p;
        p = saved + kEps;
        const double plus = EvaluateLoss(network, input, target);
        p = saved - kEps;
        const double minus = EvaluateLoss(network, input, target);
        p = saved;
        const double numeric = (plus - minus) / (2.0 * kEps);
        EXPECT_NEAR(analytic.data()[i], numeric, kTol)
            << "layer " << li << " param " << i;
      }
    };
    check_tensor(layers[li].weights(), layers[li].weight_gradients());
    check_tensor(layers[li].biases(), layers[li].bias_gradients());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllActivationsAndLosses, GradientCheck,
    ::testing::Combine(::testing::Values(Activation::kIdentity,
                                         Activation::kRelu,
                                         Activation::kSigmoid,
                                         Activation::kTanh),
                       ::testing::Values(Loss::kMeanSquaredError,
                                         Loss::kBinaryCrossEntropy)));

TEST(ActivationFunctions, PointValues) {
  const Tensor x{{-1.0, 0.0, 2.0}};
  const Tensor relu = Apply(Activation::kRelu, x);
  EXPECT_DOUBLE_EQ(relu(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(relu(0, 2), 2.0);
  const Tensor sig = Apply(Activation::kSigmoid, x);
  EXPECT_NEAR(sig(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(sig(0, 2), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  const Tensor th = Apply(Activation::kTanh, x);
  EXPECT_NEAR(th(0, 0), std::tanh(-1.0), 1e-12);
  const Tensor id = Apply(Activation::kIdentity, x);
  EXPECT_DOUBLE_EQ(id(0, 0), -1.0);
}

TEST(ActivationFunctions, NamesRoundTrip) {
  for (auto act : {Activation::kIdentity, Activation::kRelu,
                   Activation::kSigmoid, Activation::kTanh}) {
    EXPECT_EQ(ActivationFromName(ActivationName(act)), act);
  }
  EXPECT_THROW(ActivationFromName("swish"), std::invalid_argument);
}

TEST(ActivationFunctions, SoftmaxRowsSumToOne) {
  const Tensor logits{{1.0, 2.0, 3.0}, {1000.0, 1000.0, 1000.0}};
  const Tensor probs = Softmax(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 3; ++c) total += probs(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  // Large logits must not overflow (max-subtraction).
  EXPECT_NEAR(probs(1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_GT(probs(0, 2), probs(0, 1));
}

TEST(Losses, MsePointValue) {
  const Tensor pred{{1.0, 2.0}};
  const Tensor target{{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(ComputeLoss(Loss::kMeanSquaredError, pred, target),
                   (1.0 + 4.0) / 2.0);
}

TEST(Losses, BceClampsExtremePredictions) {
  const Tensor pred{{0.0, 1.0}};
  const Tensor target{{1.0, 0.0}};
  const double loss = ComputeLoss(Loss::kBinaryCrossEntropy, pred, target);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 10.0);  // confidently wrong is expensive but finite
}

TEST(Losses, MaskedMseIgnoresMaskedElements) {
  const Tensor pred{{1.0, 100.0}, {2.0, -50.0}};
  const Tensor target{{0.0, 0.0}, {0.0, 0.0}};
  const Tensor mask{{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(MaskedMseLoss(pred, target, mask), (1.0 + 4.0) / 2.0);
  const Tensor grad = MaskedMseGradient(pred, target, mask);
  EXPECT_DOUBLE_EQ(grad(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(grad(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 2.0 * 1.0 / 2.0);
  // All-zero mask: zero loss and zero gradient, no division by zero.
  const Tensor zero_mask(2, 2, 0.0);
  EXPECT_DOUBLE_EQ(MaskedMseLoss(pred, target, zero_mask), 0.0);
  EXPECT_DOUBLE_EQ(MaskedMseGradient(pred, target, zero_mask).SumAll(), 0.0);
}

}  // namespace
}  // namespace jarvis::neural
