#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "events/bus.h"
#include "faults/injector.h"
#include "faults/schedule.h"

namespace jarvis::faults {
namespace {

events::Event Sensor(int minute, const std::string& device,
                     const std::string& value) {
  events::Event event;
  event.date = util::SimTime(minute);
  event.device_label = device;
  event.capability = "sensor";
  event.attribute = "state";
  event.attribute_value = value;
  event.data = "state-change";
  return event;
}

events::Event Command(int minute, const std::string& device,
                      const std::string& command) {
  events::Event event = Sensor(minute, device, "on");
  event.command = command;
  return event;
}

// A small mixed stream: alternating sensor reports and commands across two
// devices, one event per minute.
std::vector<events::Event> MixedStream(int count) {
  std::vector<events::Event> events;
  for (int i = 0; i < count; ++i) {
    const std::string device = (i % 2 == 0) ? "light" : "temp_sensor";
    if (i % 3 == 0) {
      events.push_back(Command(i, device, "power_on"));
    } else {
      events.push_back(Sensor(i, device, (i % 2 == 0) ? "on" : "optimal"));
    }
  }
  return events;
}

FaultSpec Spec(FaultKind kind, double rate, int delay_minutes = 5) {
  FaultSpec spec;
  spec.kind = kind;
  spec.rate = rate;
  spec.delay_minutes = delay_minutes;
  return spec;
}

TEST(FaultKindName, CoversEveryKind) {
  EXPECT_EQ(FaultKindName(FaultKind::kDrop), "drop");
  EXPECT_EQ(FaultKindName(FaultKind::kPublishFail), "publish-fail");
}

TEST(FaultSpec, WindowAndDeviceScope) {
  FaultSpec spec;
  spec.window_start = util::SimTime(10);
  spec.window_end = util::SimTime(20);
  spec.device_label = "light";
  EXPECT_FALSE(spec.AppliesAt(util::SimTime(9)));
  EXPECT_TRUE(spec.AppliesAt(util::SimTime(10)));
  EXPECT_TRUE(spec.AppliesAt(util::SimTime(19)));
  EXPECT_FALSE(spec.AppliesAt(util::SimTime(20)));
  EXPECT_TRUE(spec.AppliesTo("light"));
  EXPECT_FALSE(spec.AppliesTo("lock"));
  EXPECT_TRUE(FaultSpec{}.AppliesTo("anything"));
}

TEST(FaultInjector, EmptyScheduleIsIdentity) {
  const auto input = MixedStream(50);
  FaultInjector injector({});
  EXPECT_EQ(injector.Apply(input), input);
  EXPECT_EQ(injector.counters().total(), 0u);
}

TEST(FaultInjector, ZeroRatesAreIdentity) {
  const auto input = MixedStream(50);
  FaultSchedule schedule;
  for (const auto kind :
       {FaultKind::kDrop, FaultKind::kDuplicate, FaultKind::kDelay,
        FaultKind::kReorder, FaultKind::kCorruptField,
        FaultKind::kDeviceOffline, FaultKind::kDeviceFlap,
        FaultKind::kStuckSensor}) {
    FaultSpec spec;
    spec.kind = kind;
    spec.rate = 0.0;
    schedule.specs.push_back(spec);
  }
  FaultInjector injector(schedule);
  EXPECT_EQ(injector.Apply(input), input);
  EXPECT_EQ(injector.counters().total(), 0u);
}

TEST(FaultInjector, ApplyIsDeterministicPerCall) {
  const auto input = MixedStream(200);
  FaultSchedule schedule;
  schedule.seed = 17;
  schedule.specs.push_back(Spec(FaultKind::kDrop, 0.2));
  schedule.specs.push_back(Spec(FaultKind::kDuplicate, 0.2));
  schedule.specs.push_back(Spec(FaultKind::kCorruptField, 0.1));

  FaultInjector injector(schedule);
  const auto first = injector.Apply(input);
  const FaultCounters after_first = injector.counters();
  const auto second = injector.Apply(input);

  EXPECT_EQ(first, second);
  // Counters accumulate: the second identical pass doubles them exactly.
  FaultCounters doubled = after_first;
  doubled += after_first;
  EXPECT_EQ(injector.counters(), doubled);

  // A different seed produces a different faulted stream.
  FaultSchedule reseeded = schedule;
  reseeded.seed = 18;
  FaultInjector other(reseeded);
  EXPECT_NE(other.Apply(input), first);
}

TEST(FaultInjector, HardDropLosesEverything) {
  const auto input = MixedStream(20);
  FaultSchedule schedule;
  schedule.specs.push_back(Spec(FaultKind::kDrop, 1.0));
  FaultInjector injector(schedule);
  EXPECT_TRUE(injector.Apply(input).empty());
  EXPECT_EQ(injector.counters().dropped, 20u);
}

TEST(FaultInjector, DuplicateEmitsExtraCopies) {
  const auto input = MixedStream(20);
  FaultSchedule schedule;
  schedule.specs.push_back(Spec(FaultKind::kDuplicate, 1.0));
  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);
  EXPECT_EQ(out.size(), 40u);
  EXPECT_EQ(injector.counters().duplicated, 20u);
  EXPECT_EQ(out[0], out[1]);
}

TEST(FaultInjector, OfflineScopedToDevice) {
  const auto input = MixedStream(20);
  FaultSchedule schedule;
  FaultSpec spec;
  spec.kind = FaultKind::kDeviceOffline;
  spec.rate = 1.0;
  spec.device_label = "light";
  schedule.specs.push_back(spec);
  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);
  EXPECT_EQ(out.size(), 10u);  // every odd-minute temp_sensor event survives
  for (const auto& event : out) {
    EXPECT_EQ(event.device_label, "temp_sensor");
  }
  EXPECT_EQ(injector.counters().offline_drops, 10u);
}

TEST(FaultInjector, DelayedEventArrivesLateAsStraggler) {
  std::vector<events::Event> input;
  for (int minute = 0; minute < 10; ++minute) {
    input.push_back(Sensor(minute, "light", minute % 2 == 0 ? "on" : "off"));
  }
  FaultSchedule schedule;
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.rate = 1.0;
  spec.window_start = util::SimTime(2);
  spec.window_end = util::SimTime(3);
  spec.delay_minutes = 5;
  schedule.specs.push_back(spec);
  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);

  ASSERT_EQ(out.size(), input.size());
  EXPECT_EQ(injector.counters().delayed, 1u);
  // The minute-2 event now sits after minute 6 (due at 7, flushed when the
  // minute-7 publication arrives) but keeps its original timestamp — the
  // parser sees it as an out-of-order straggler.
  EXPECT_EQ(out[6].date, util::SimTime(2));
  EXPECT_EQ(out[5].date, util::SimTime(6));
  EXPECT_EQ(out[7].date, util::SimTime(7));
}

TEST(FaultInjector, StuckSensorFreezesAtFirstInWindowValue) {
  std::vector<events::Event> input;
  input.push_back(Sensor(0, "temp_sensor", "optimal"));
  input.push_back(Sensor(1, "temp_sensor", "below_optimal"));
  input.push_back(Sensor(2, "temp_sensor", "above_optimal"));
  FaultSchedule schedule;
  FaultSpec spec;
  spec.kind = FaultKind::kStuckSensor;
  spec.rate = 1.0;
  schedule.specs.push_back(spec);
  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& event : out) {
    EXPECT_EQ(event.attribute_value, "optimal");
  }
  // Only the two rewritten reports count; the first was already stuck.
  EXPECT_EQ(injector.counters().stuck_reports, 2u);
}

TEST(FaultInjector, CorruptFieldManglesExactlyOneField) {
  const auto input = MixedStream(30);
  FaultSchedule schedule;
  schedule.specs.push_back(Spec(FaultKind::kCorruptField, 1.0));
  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);
  ASSERT_EQ(out.size(), input.size());
  EXPECT_EQ(injector.counters().corrupted, input.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NE(out[i], input[i]) << "event " << i << " not corrupted";
    EXPECT_EQ(out[i].date, input[i].date);  // timestamps never corrupted
  }
}

TEST(FaultInjector, FlapReplaysPreviousValueBeforeCurrent) {
  std::vector<events::Event> input;
  input.push_back(Sensor(0, "temp_sensor", "optimal"));
  input.push_back(Sensor(1, "temp_sensor", "below_optimal"));
  input.push_back(Sensor(2, "temp_sensor", "optimal"));
  FaultSchedule schedule;
  schedule.specs.push_back(Spec(FaultKind::kDeviceFlap, 1.0));
  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);
  // First event has no previous value; the next two each gain one stale
  // contradictory report ahead of them.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].attribute_value, "optimal");
  EXPECT_EQ(out[1].attribute_value, "optimal");        // stale replay
  EXPECT_EQ(out[2].attribute_value, "below_optimal");
  EXPECT_EQ(out[3].attribute_value, "below_optimal");  // stale replay
  EXPECT_EQ(out[4].attribute_value, "optimal");
  EXPECT_EQ(injector.counters().flap_reports, 2u);
}

TEST(FaultInjector, SizeInvariantUnderMixedSchedule) {
  const auto input = MixedStream(400);
  FaultSchedule schedule;
  schedule.seed = 99;
  schedule.specs.push_back(Spec(FaultKind::kDrop, 0.1));
  schedule.specs.push_back(Spec(FaultKind::kDuplicate, 0.15));
  schedule.specs.push_back(Spec(FaultKind::kDelay, 0.2));
  schedule.specs.push_back(Spec(FaultKind::kReorder, 0.1));
  schedule.specs.push_back(Spec(FaultKind::kCorruptField, 0.05));
  schedule.specs.push_back(Spec(FaultKind::kDeviceFlap, 0.3));
  FaultSpec offline;
  offline.kind = FaultKind::kDeviceOffline;
  offline.rate = 1.0;
  offline.device_label = "light";
  offline.window_start = util::SimTime(100);
  offline.window_end = util::SimTime(150);
  schedule.specs.push_back(offline);

  FaultInjector injector(schedule);
  const auto out = injector.Apply(input);
  const FaultCounters& c = injector.counters();
  EXPECT_GT(c.total(), 0u);
  // Delays and reorders move events; only drops remove and only duplicates
  // and flaps add.
  EXPECT_EQ(out.size(), input.size() - c.dropped - c.offline_drops +
                            c.duplicated + c.flap_reports);
}

TEST(FaultyBus, DelayHoldsEventUntilFlush) {
  events::EventBus bus;
  std::vector<events::Event> seen;
  bus.Subscribe("", "", [&](const events::Event& e) { seen.push_back(e); });

  FaultSchedule schedule;
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.rate = 1.0;
  spec.window_start = util::SimTime(0);
  spec.window_end = util::SimTime(1);
  spec.delay_minutes = 10;
  schedule.specs.push_back(spec);
  FaultyBus faulty(bus, schedule);

  EXPECT_TRUE(faulty.Publish(Sensor(0, "light", "on")));
  EXPECT_EQ(faulty.pending_delayed(), 1u);
  EXPECT_TRUE(seen.empty());

  // Publishing a later event flushes everything due up to its timestamp.
  EXPECT_TRUE(faulty.Publish(Sensor(12, "light", "off")));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].date, util::SimTime(0));  // straggler, original stamp
  EXPECT_EQ(seen[1].date, util::SimTime(12));
  EXPECT_EQ(faulty.pending_delayed(), 0u);
  EXPECT_EQ(faulty.counters().delayed, 1u);
}

TEST(FaultyBus, FlushAllDrainsPending) {
  events::EventBus bus;
  int seen = 0;
  bus.Subscribe("", "", [&](const events::Event&) { ++seen; });
  FaultSchedule schedule;
  schedule.specs.push_back(
      Spec(FaultKind::kDelay, 1.0, 10000));
  FaultyBus faulty(bus, schedule);
  faulty.Publish(Sensor(0, "light", "on"));
  faulty.Publish(Sensor(1, "light", "off"));
  EXPECT_EQ(seen, 0);
  faulty.FlushAll();
  EXPECT_EQ(seen, 2);
}

TEST(FaultyBus, PublishFailReturnsFalseBeforeDelivery) {
  events::EventBus bus;
  int seen = 0;
  bus.Subscribe("", "", [&](const events::Event&) { ++seen; });
  FaultSchedule schedule;
  schedule.specs.push_back(Spec(FaultKind::kPublishFail, 1.0));
  FaultyBus faulty(bus, schedule);
  EXPECT_FALSE(faulty.Publish(Sensor(0, "light", "on")));
  EXPECT_EQ(seen, 0);
  EXPECT_EQ(faulty.counters().publish_failures, 1u);
}

TEST(ReliablePublisher, AbandonsAfterBudgetAgainstHardFailure) {
  events::EventBus bus;
  FaultSchedule schedule;
  schedule.specs.push_back(Spec(FaultKind::kPublishFail, 1.0));
  FaultyBus faulty(bus, schedule);
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  ReliablePublisher publisher(faulty, policy);
  EXPECT_FALSE(publisher.Publish(Sensor(0, "light", "on")));
  EXPECT_EQ(publisher.retried_publishes(), 2u);
  EXPECT_EQ(publisher.abandoned_publishes(), 1u);
  EXPECT_EQ(faulty.counters().publish_failures, 3u);
  EXPECT_EQ(bus.published_count(), 0u);
}

TEST(ReliablePublisher, RecoversIntermittentFailures) {
  events::EventBus bus;
  FaultSchedule schedule;
  schedule.seed = 3;
  schedule.specs.push_back(Spec(FaultKind::kPublishFail, 0.5));
  FaultyBus faulty(bus, schedule);
  util::RetryPolicy policy;
  policy.max_attempts = 10;
  ReliablePublisher publisher(faulty, policy);
  std::size_t delivered = 0;
  for (int i = 0; i < 50; ++i) {
    if (publisher.Publish(Sensor(i, "light", i % 2 == 0 ? "on" : "off"))) {
      ++delivered;
    }
  }
  // At rate 0.5 and a 10-attempt budget, retries happen and essentially
  // everything gets through.
  EXPECT_GT(publisher.retried_publishes(), 0u);
  EXPECT_EQ(delivered, 50u - publisher.abandoned_publishes());
  EXPECT_EQ(bus.published_count(), delivered);
  EXPECT_GT(faulty.counters().publish_failures, 0u);
}

TEST(FaultCounters, AccumulateAndCompare) {
  FaultCounters a;
  a.dropped = 2;
  a.flap_reports = 1;
  FaultCounters b;
  b.dropped = 1;
  b.publish_failures = 4;
  a += b;
  EXPECT_EQ(a.dropped, 3u);
  EXPECT_EQ(a.flap_reports, 1u);
  EXPECT_EQ(a.publish_failures, 4u);
  EXPECT_EQ(a.total(), 8u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace jarvis::faults
