// util::Mutex contract tests: the RAII guards, the CondVar pairing, and —
// the point of the wrapper — the always-on owner-tracking assertions that
// turn self-deadlocks and foreign unlocks into util::CheckError instead of
// hangs. The concurrent cases double as TSan coverage (label `runtime`).
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "util/check.h"

namespace jarvis::util {
namespace {

TEST(Mutex, LockUnlockRoundTrip) {
  Mutex mutex;
  mutex.Lock();
  mutex.AssertHeld();
  mutex.Unlock();
  EXPECT_THROW(mutex.AssertHeld(), CheckError);
}

TEST(Mutex, TryLockSucceedsWhenFree) {
  Mutex mutex;
  ASSERT_TRUE(mutex.TryLock());
  mutex.AssertHeld();
  mutex.Unlock();
}

TEST(Mutex, TryLockFailsWhenAnotherThreadHolds) {
  Mutex mutex;
  mutex.Lock();
  bool acquired = true;
  std::thread other([&mutex, &acquired] { acquired = mutex.TryLock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mutex.Unlock();
}

TEST(Mutex, ReentrantLockIsACheckErrorNotADeadlock) {
  Mutex mutex;
  MutexLock lock(mutex);
  EXPECT_THROW(mutex.Lock(), CheckError);
  EXPECT_THROW(mutex.TryLock(), CheckError);
}

TEST(Mutex, UnlockByNonOwnerIsACheckError) {
  Mutex mutex;
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    mutex.Lock();
    locked.store(true);
    while (!release.load()) std::this_thread::yield();
    mutex.Unlock();
  });
  while (!locked.load()) std::this_thread::yield();
  EXPECT_THROW(mutex.Unlock(), CheckError);
  release.store(true);
  holder.join();
}

TEST(Mutex, AssertNotHeldCatchesTheOwner) {
  Mutex mutex;
  mutex.AssertNotHeld();  // free: fine
  MutexLock lock(mutex);
  EXPECT_THROW(mutex.AssertNotHeld(), CheckError);
}

TEST(Mutex, MutexLockSerializesConcurrentIncrements) {
  Mutex mutex;
  std::size_t counter = 0;  // non-atomic on purpose: the lock is the fence
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mutex, &counter] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 4000u);
}

TEST(SharedMutex, WriterExcludesWritersAndTracksOwner) {
  SharedMutex mutex;
  {
    WriterMutexLock lock(mutex);
    mutex.AssertHeld();
    EXPECT_THROW(mutex.Lock(), CheckError);  // re-entrant writer
  }
  EXPECT_THROW(mutex.AssertHeld(), CheckError);
}

TEST(SharedMutex, WriterDowngradeViaReaderLockIsACheckError) {
  SharedMutex mutex;
  WriterMutexLock lock(mutex);
  EXPECT_THROW(mutex.ReaderLock(), CheckError);
}

TEST(SharedMutex, ReadersShareWritersSerialize) {
  SharedMutex mutex;
  std::size_t value = 0;  // non-atomic: reader/writer lock is the fence
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        WriterMutexLock lock(mutex);
        ++value;
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      std::size_t last = 0;
      for (int i = 0; i < 500; ++i) {
        ReaderMutexLock lock(mutex);
        EXPECT_GE(value, last);  // monotone under the writers above
        last = value;
        reads.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(value, 1000u);
  EXPECT_EQ(reads.load(), 2000u);
}

TEST(CondVar, WaitReleasesAndReacquiresWithExactOwnership) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.Signal();
  });
  {
    MutexLock lock(mutex);
    while (!ready) {
      cv.Wait(mutex);
    }
    // Re-acquired on wakeup: the owner assertion must agree.
    mutex.AssertHeld();
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, PredicateOverloadHandlesSpuriousWakeups) {
  Mutex mutex;
  CondVar cv;
  int stage = 0;
  std::thread producer([&] {
    for (int next = 1; next <= 3; ++next) {
      MutexLock lock(mutex);
      stage = next;
      cv.SignalAll();
    }
  });
  {
    MutexLock lock(mutex);
    cv.Wait(mutex, [&] { return stage == 3; });
    EXPECT_EQ(stage, 3);
  }
  producer.join();
}

}  // namespace
}  // namespace jarvis::util
