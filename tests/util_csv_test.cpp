#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace jarvis::util {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter writer({"f", "normal", "jarvis"});
  writer.AddRow({"0.1", "35.2", "20.1"});
  writer.AddNumericRow({0.5, 34.0, 12.25});
  EXPECT_EQ(writer.ToString(),
            "f,normal,jarvis\n0.1,35.2,20.1\n0.5,34,12.25\n");
  EXPECT_EQ(writer.row_count(), 2u);
}

TEST(Csv, RejectsColumnMismatch) {
  CsvWriter writer({"a", "b"});
  EXPECT_THROW(writer.AddRow({"only-one"}), std::invalid_argument);
}

TEST(Csv, QuotesFieldsWithSpecials) {
  CsvWriter writer({"text"});
  writer.AddRow({"a,b"});
  writer.AddRow({"say \"hi\""});
  writer.AddRow({"two\nlines"});
  const auto parsed = ParseCsv(writer.ToString());
  ASSERT_EQ(parsed.size(), 4u);  // header + 3 rows
  EXPECT_EQ(parsed[1][0], "a,b");
  EXPECT_EQ(parsed[2][0], "say \"hi\"");
  EXPECT_EQ(parsed[3][0], "two\nlines");
}

TEST(Csv, ParsesPlainRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, ToleratesCrLfAndMissingTrailingNewline) {
  const auto rows = ParseCsv("a,b\r\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto rows = ParseCsv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(Csv, DoubledQuotesDecode) {
  const auto rows = ParseCsv("\"he said \"\"no\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"no\"");
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jarvis_csv_test.csv";
  CsvWriter writer({"x", "y"});
  writer.AddNumericRow({1.0, 2.0});
  writer.WriteFile(path);
  const auto rows = ReadCsvFile(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "1");
  std::remove(path.c_str());
  EXPECT_THROW(ReadCsvFile("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace jarvis::util
