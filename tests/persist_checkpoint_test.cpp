// Container-format coverage for persist::Checkpoint: round trip, and the
// per-section salvage semantics the recovery layer depends on — magic and
// version skew reject the whole file, truncation salvages the intact
// prefix, a CRC mismatch drops exactly the corrupt section, and corrupt
// headers stop cleanly. Corruption is data, not an exception: Parse never
// throws.
#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/io.h"

namespace jarvis::persist {
namespace {

Checkpoint MakeCheckpoint() {
  Checkpoint checkpoint;
  checkpoint.AddSection("meta", "{\"v\":1}");
  checkpoint.AddSection("spl", std::string(512, 'a'));
  checkpoint.AddSection("dqn", std::string("binary\0bytes\xff ok", 16));
  return checkpoint;
}

TEST(Checkpoint, RoundTripPreservesSectionsAndOrder) {
  const std::string bytes = MakeCheckpoint().Serialize();
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::Parse(bytes, &issues);
  EXPECT_TRUE(issues.empty()) << FormatIssues(issues);
  ASSERT_EQ(parsed.section_count(), 3u);
  EXPECT_EQ(parsed.SectionNames(),
            (std::vector<std::string>{"meta", "spl", "dqn"}));
  ASSERT_NE(parsed.FindSection("dqn"), nullptr);
  EXPECT_EQ(*parsed.FindSection("dqn"), std::string("binary\0bytes\xff ok", 16));
  EXPECT_EQ(*parsed.FindSection("meta"), "{\"v\":1}");
}

TEST(Checkpoint, AddSectionReplacesExistingPayload) {
  Checkpoint checkpoint;
  checkpoint.AddSection("spl", "old");
  checkpoint.AddSection("meta", "m");
  checkpoint.AddSection("spl", "new");
  EXPECT_EQ(checkpoint.section_count(), 2u);
  EXPECT_EQ(*checkpoint.FindSection("spl"), "new");
  // Replacement keeps the original position.
  EXPECT_EQ(checkpoint.SectionNames(),
            (std::vector<std::string>{"spl", "meta"}));
}

TEST(Checkpoint, BadMagicRecoversNothing) {
  std::string bytes = MakeCheckpoint().Serialize();
  bytes[0] = 'X';
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::Parse(bytes, &issues);
  EXPECT_EQ(parsed.section_count(), 0u);
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(issues[0].section.empty());  // file-level issue
}

TEST(Checkpoint, VersionSkewRecoversNothing) {
  std::string bytes = MakeCheckpoint().Serialize();
  bytes[4] = static_cast<char>(kFormatVersion + 1);  // little-endian u32
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::Parse(bytes, &issues);
  EXPECT_EQ(parsed.section_count(), 0u);
  ASSERT_FALSE(issues.empty());
}

TEST(Checkpoint, TruncationSalvagesIntactPrefix) {
  const std::string bytes = MakeCheckpoint().Serialize();
  // Cut into the middle of the last section's payload: the first two
  // sections must survive, the torn one must be reported and dropped.
  const std::string torn = bytes.substr(0, bytes.size() - 8);
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::Parse(torn, &issues);
  EXPECT_EQ(parsed.section_count(), 2u);
  EXPECT_TRUE(parsed.HasSection("meta"));
  EXPECT_TRUE(parsed.HasSection("spl"));
  EXPECT_FALSE(parsed.HasSection("dqn"));
  ASSERT_FALSE(issues.empty());
}

TEST(Checkpoint, BitFlipDropsOnlyTheCorruptSection) {
  const std::string bytes = MakeCheckpoint().Serialize();
  // Flip one bit inside the large middle section's payload; CRC catches
  // it, the sections around it still restore.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 0x10);
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::Parse(flipped, &issues);
  EXPECT_TRUE(parsed.HasSection("meta"));
  EXPECT_FALSE(parsed.HasSection("spl"));
  EXPECT_TRUE(parsed.HasSection("dqn"));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].section, "spl");
}

TEST(Checkpoint, EmptyAndGarbageInputsNeverThrow) {
  std::vector<CheckpointIssue> issues;
  EXPECT_EQ(Checkpoint::Parse("", &issues).section_count(), 0u);
  EXPECT_EQ(Checkpoint::Parse("JV", &issues).section_count(), 0u);
  EXPECT_EQ(Checkpoint::Parse(std::string(64, '\xff'), &issues)
                .section_count(),
            0u);
  // A null issues sink is also fine.
  EXPECT_EQ(Checkpoint::Parse("garbage", nullptr).section_count(), 0u);
}

TEST(Checkpoint, TrailingBytesAreReportedAndIgnored) {
  std::string bytes = MakeCheckpoint().Serialize();
  bytes += "junk";
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::Parse(bytes, &issues);
  EXPECT_EQ(parsed.section_count(), 3u);
  EXPECT_FALSE(issues.empty());
}

TEST(Checkpoint, WriteAndReadFileRoundTrip) {
  const std::string path = testing::TempDir() + "/ckpt_roundtrip.ckpt";
  MakeCheckpoint().WriteFile(path);
  std::vector<CheckpointIssue> issues;
  const Checkpoint parsed = Checkpoint::ReadFile(path, &issues);
  EXPECT_TRUE(issues.empty()) << FormatIssues(issues);
  EXPECT_EQ(parsed.section_count(), 3u);
  util::io::RemoveFile(path);
}

TEST(Checkpoint, MissingFileThrowsIoError) {
  EXPECT_THROW(Checkpoint::ReadFile(testing::TempDir() + "/no_such.ckpt",
                                    nullptr),
               util::io::IoError);
}

// Crash-before-commit: a failed rename must leave the previous checkpoint
// untouched — the atomic-write contract the whole recovery story rests on.
class RenameFailInterceptor : public util::io::WriteInterceptor {
 public:
  void OnWrite(const std::string&, std::string&) override {}
  bool OnRename(const std::string&) override { return false; }
};

TEST(Checkpoint, FailedRenameLeavesOldCheckpointIntact) {
  const std::string path = testing::TempDir() + "/ckpt_atomic.ckpt";
  Checkpoint old_checkpoint;
  old_checkpoint.AddSection("meta", "old");
  old_checkpoint.WriteFile(path);

  Checkpoint new_checkpoint;
  new_checkpoint.AddSection("meta", "new");
  RenameFailInterceptor interceptor;
  EXPECT_THROW(new_checkpoint.WriteFile(path, &interceptor),
               util::io::IoError);

  const Checkpoint survivor = Checkpoint::ReadFile(path, nullptr);
  ASSERT_NE(survivor.FindSection("meta"), nullptr);
  EXPECT_EQ(*survivor.FindSection("meta"), "old");
  EXPECT_FALSE(util::io::FileExists(path + ".tmp"));  // temp cleaned up
  util::io::RemoveFile(path);
}

}  // namespace
}  // namespace jarvis::persist
