// Round-trip coverage for neural::serialize — the save-after-learning /
// load-at-deployment path. JSON numbers are emitted at %.17g, so a
// round-tripped network must match the original parameter-for-parameter
// with EXACT FP equality, and therefore predict identically.
#include "neural/serialize.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace jarvis::neural {
namespace {

Network MakeNetwork(std::uint64_t seed) {
  return Network(7,
                 {{10, Activation::kRelu},
                  {6, Activation::kTanh},
                  {4, Activation::kSigmoid},
                  {3, Activation::kIdentity}},
                 Loss::kMeanSquaredError, std::make_unique<Adam>(0.005),
                 jarvis::util::Rng(seed));
}

void TrainALittle(Network& network, std::uint64_t seed) {
  jarvis::util::Rng rng(seed);
  Tensor inputs = Tensor::Generate(24, network.input_features(),
                                   [&rng] { return rng.NextGaussian(); });
  Tensor targets = Tensor::Generate(24, network.output_features(),
                                    [&rng] { return rng.NextDouble(); });
  for (int epoch = 0; epoch < 3; ++epoch) {
    network.TrainEpoch(inputs, targets, 8);
  }
}

TEST(NeuralSerialize, RoundTripPreservesTopology) {
  Network original = MakeNetwork(5);
  const Network restored =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(999));
  ASSERT_EQ(restored.layers().size(), original.layers().size());
  EXPECT_EQ(restored.input_features(), original.input_features());
  EXPECT_EQ(restored.output_features(), original.output_features());
  EXPECT_EQ(restored.parameter_count(), original.parameter_count());
  for (std::size_t i = 0; i < original.layers().size(); ++i) {
    EXPECT_EQ(restored.layers()[i].activation(),
              original.layers()[i].activation());
    EXPECT_EQ(restored.layers()[i].in_features(),
              original.layers()[i].in_features());
    EXPECT_EQ(restored.layers()[i].out_features(),
              original.layers()[i].out_features());
  }
}

TEST(NeuralSerialize, RoundTripPreservesParametersExactly) {
  Network original = MakeNetwork(5);
  TrainALittle(original, 17);  // non-initial, "ugly" doubles
  const Network restored =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(999));
  for (std::size_t i = 0; i < original.layers().size(); ++i) {
    EXPECT_EQ(restored.layers()[i].weights().data(),
              original.layers()[i].weights().data())
        << "layer " << i << " weights";
    EXPECT_EQ(restored.layers()[i].biases().data(),
              original.layers()[i].biases().data())
        << "layer " << i << " biases";
  }
}

TEST(NeuralSerialize, RoundTripPredictsIdentically) {
  Network original = MakeNetwork(8);
  TrainALittle(original, 4);
  const Network restored =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(1));
  jarvis::util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> input(original.input_features());
    for (double& x : input) x = rng.NextGaussian(0.0, 3.0);
    EXPECT_EQ(restored.PredictOne(input), original.PredictOne(input));
  }
}

TEST(NeuralSerialize, SecondSerializationIsStable) {
  Network original = MakeNetwork(21);
  TrainALittle(original, 2);
  const std::string first = ToJsonString(original);
  const Network restored =
      FromJsonString(first, Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(0));
  EXPECT_EQ(ToJsonString(restored), first);
}

// Deterministic resumption: one fixed sample, batch size 1. TrainEpoch
// shuffles mini-batches with the network's *internal* RNG, which is
// deliberately not serialized — with a single sample the shuffle is a
// no-op and the continued trajectory is a pure function of parameters plus
// optimizer state, which is exactly what the round trip must preserve.
void ResumeTraining(Network& network, int steps) {
  int k = 0;
  const Tensor input = Tensor::Generate(
      1, network.input_features(), [&k] { return 0.1 * ++k; });
  const Tensor target = Tensor::Generate(
      1, network.output_features(), [&k] { return 0.05 * ++k; });
  for (int step = 0; step < steps; ++step) {
    network.TrainEpoch(input, target, 1);
  }
}

TEST(NeuralSerialize, OptimizerStateRoundTripResumesTrainingExactly) {
  // The strong form of optimizer-state fidelity: after a round trip WITH
  // optimizer state, continued training must follow the original run
  // step-for-step — Adam's moments, velocities, and step count all have to
  // be bit-exact for the bias-corrected updates to match.
  Network original = MakeNetwork(5);
  TrainALittle(original, 17);
  const SerializeOptions with_optimizer{.include_optimizer = true};
  Network restored =
      FromJsonString(ToJsonString(original, with_optimizer),
                     Loss::kMeanSquaredError, std::make_unique<Adam>(0.005),
                     jarvis::util::Rng(999));
  ResumeTraining(original, 5);
  ResumeTraining(restored, 5);
  for (std::size_t i = 0; i < original.layers().size(); ++i) {
    EXPECT_EQ(restored.layers()[i].weights().data(),
              original.layers()[i].weights().data())
        << "layer " << i << " diverged after resumed training";
  }
}

TEST(NeuralSerialize, ColdOptimizerRestoreDivergesFromWarm) {
  // Control for the test above: WITHOUT optimizer state the restored
  // network resumes with cold moments (Adam restarts its bias-correction
  // step count), so the same continued training takes a different
  // trajectory. Guards against include_optimizer silently doing nothing.
  Network original = MakeNetwork(5);
  TrainALittle(original, 17);
  Network cold =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(999));
  ResumeTraining(original, 5);
  ResumeTraining(cold, 5);
  bool any_difference = false;
  for (std::size_t i = 0; i < original.layers().size(); ++i) {
    if (cold.layers()[i].weights().data() !=
        original.layers()[i].weights().data()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(NeuralSerialize, DocumentWithoutOptimizerOmitsTheSection) {
  Network original = MakeNetwork(3);
  TrainALittle(original, 9);
  const auto bare = ToJson(original);
  EXPECT_EQ(bare.AsObject().count("optimizer"), 0u);
  const auto with_state = ToJson(original, {.include_optimizer = true});
  EXPECT_EQ(with_state.AsObject().count("optimizer"), 1u);
}

TEST(NeuralSerialize, CrossKindOptimizerImportIsRejected) {
  // Adam state imported into an SGD optimizer (or vice versa) would be
  // silently misinterpreted; the kind is recorded and enforced.
  Network original = MakeNetwork(5);
  TrainALittle(original, 17);
  const std::string text =
      ToJsonString(original, {.include_optimizer = true});
  EXPECT_THROW(FromJsonString(text, Loss::kMeanSquaredError,
                              std::make_unique<Sgd>(0.005),
                              jarvis::util::Rng(0)),
               jarvis::util::JsonError);
}

TEST(NeuralSerialize, NonFiniteParameterRejectedAtSave) {
  // A diverged network must fail loudly at the boundary, not persist a
  // poisoned policy ("%.17g" would emit unparseable tokens anyway).
  Network network = MakeNetwork(5);
  network.mutable_layers()[1].weights().At(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ToJsonString(network), jarvis::util::CheckError);

  Network infinite = MakeNetwork(6);
  infinite.mutable_layers()[0].biases().At(0, 1) =
      std::numeric_limits<double>::infinity();
  EXPECT_THROW(ToJsonString(infinite), jarvis::util::CheckError);
}

TEST(NeuralSerialize, NonFiniteParameterRejectedAtLoad) {
  // Same policy on the read side: a checkpoint poisoned at rest (or by a
  // hostile writer) is rejected as malformed input, not loaded.
  Network network = MakeNetwork(5);
  jarvis::util::JsonValue doc = ToJson(network);
  doc.MutableObject()["layers"]
      .MutableArray()[0]
      .MutableObject()["weights"]
      .MutableObject()["data"]
      .MutableArray()[0] =
      jarvis::util::JsonValue(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(FromJson(doc, Loss::kMeanSquaredError,
                        std::make_unique<Adam>(0.005),
                        jarvis::util::Rng(0)),
               jarvis::util::JsonError);
}

TEST(NeuralSerialize, RejectsCorruptDocuments) {
  // Hand-built document with a truncated weight payload: "data" holds one
  // value where rows*cols demands six.
  jarvis::util::JsonObject weights;
  weights["rows"] = jarvis::util::JsonValue(2);
  weights["cols"] = jarvis::util::JsonValue(3);
  weights["data"] =
      jarvis::util::JsonValue(jarvis::util::JsonArray{
          jarvis::util::JsonValue(1.0)});
  jarvis::util::JsonObject biases;
  biases["rows"] = jarvis::util::JsonValue(1);
  biases["cols"] = jarvis::util::JsonValue(3);
  biases["data"] = jarvis::util::JsonValue(
      jarvis::util::JsonArray(3, jarvis::util::JsonValue(0.0)));
  jarvis::util::JsonObject layer;
  layer["activation"] = jarvis::util::JsonValue("identity");
  layer["weights"] = jarvis::util::JsonValue(std::move(weights));
  layer["biases"] = jarvis::util::JsonValue(std::move(biases));
  jarvis::util::JsonObject doc;
  doc["input_features"] = jarvis::util::JsonValue(2);
  doc["layers"] = jarvis::util::JsonValue(
      jarvis::util::JsonArray{jarvis::util::JsonValue(std::move(layer))});
  EXPECT_THROW(
      FromJson(jarvis::util::JsonValue(std::move(doc)),
               Loss::kMeanSquaredError, std::make_unique<Adam>(0.005),
               jarvis::util::Rng(0)),
      jarvis::util::JsonError);
}

}  // namespace
}  // namespace jarvis::neural
