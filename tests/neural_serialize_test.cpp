// Round-trip coverage for neural::serialize — the save-after-learning /
// load-at-deployment path. JSON numbers are emitted at %.17g, so a
// round-tripped network must match the original parameter-for-parameter
// with EXACT FP equality, and therefore predict identically.
#include "neural/serialize.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/rng.h"

namespace jarvis::neural {
namespace {

Network MakeNetwork(std::uint64_t seed) {
  return Network(7,
                 {{10, Activation::kRelu},
                  {6, Activation::kTanh},
                  {4, Activation::kSigmoid},
                  {3, Activation::kIdentity}},
                 Loss::kMeanSquaredError, std::make_unique<Adam>(0.005),
                 jarvis::util::Rng(seed));
}

void TrainALittle(Network& network, std::uint64_t seed) {
  jarvis::util::Rng rng(seed);
  Tensor inputs = Tensor::Generate(24, network.input_features(),
                                   [&rng] { return rng.NextGaussian(); });
  Tensor targets = Tensor::Generate(24, network.output_features(),
                                    [&rng] { return rng.NextDouble(); });
  for (int epoch = 0; epoch < 3; ++epoch) {
    network.TrainEpoch(inputs, targets, 8);
  }
}

TEST(NeuralSerialize, RoundTripPreservesTopology) {
  Network original = MakeNetwork(5);
  const Network restored =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(999));
  ASSERT_EQ(restored.layers().size(), original.layers().size());
  EXPECT_EQ(restored.input_features(), original.input_features());
  EXPECT_EQ(restored.output_features(), original.output_features());
  EXPECT_EQ(restored.parameter_count(), original.parameter_count());
  for (std::size_t i = 0; i < original.layers().size(); ++i) {
    EXPECT_EQ(restored.layers()[i].activation(),
              original.layers()[i].activation());
    EXPECT_EQ(restored.layers()[i].in_features(),
              original.layers()[i].in_features());
    EXPECT_EQ(restored.layers()[i].out_features(),
              original.layers()[i].out_features());
  }
}

TEST(NeuralSerialize, RoundTripPreservesParametersExactly) {
  Network original = MakeNetwork(5);
  TrainALittle(original, 17);  // non-initial, "ugly" doubles
  const Network restored =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(999));
  for (std::size_t i = 0; i < original.layers().size(); ++i) {
    EXPECT_EQ(restored.layers()[i].weights().data(),
              original.layers()[i].weights().data())
        << "layer " << i << " weights";
    EXPECT_EQ(restored.layers()[i].biases().data(),
              original.layers()[i].biases().data())
        << "layer " << i << " biases";
  }
}

TEST(NeuralSerialize, RoundTripPredictsIdentically) {
  Network original = MakeNetwork(8);
  TrainALittle(original, 4);
  const Network restored =
      FromJsonString(ToJsonString(original), Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(1));
  jarvis::util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> input(original.input_features());
    for (double& x : input) x = rng.NextGaussian(0.0, 3.0);
    EXPECT_EQ(restored.PredictOne(input), original.PredictOne(input));
  }
}

TEST(NeuralSerialize, SecondSerializationIsStable) {
  Network original = MakeNetwork(21);
  TrainALittle(original, 2);
  const std::string first = ToJsonString(original);
  const Network restored =
      FromJsonString(first, Loss::kMeanSquaredError,
                     std::make_unique<Adam>(0.005), jarvis::util::Rng(0));
  EXPECT_EQ(ToJsonString(restored), first);
}

TEST(NeuralSerialize, RejectsCorruptDocuments) {
  // Hand-built document with a truncated weight payload: "data" holds one
  // value where rows*cols demands six.
  jarvis::util::JsonObject weights;
  weights["rows"] = jarvis::util::JsonValue(2);
  weights["cols"] = jarvis::util::JsonValue(3);
  weights["data"] =
      jarvis::util::JsonValue(jarvis::util::JsonArray{
          jarvis::util::JsonValue(1.0)});
  jarvis::util::JsonObject biases;
  biases["rows"] = jarvis::util::JsonValue(1);
  biases["cols"] = jarvis::util::JsonValue(3);
  biases["data"] = jarvis::util::JsonValue(
      jarvis::util::JsonArray(3, jarvis::util::JsonValue(0.0)));
  jarvis::util::JsonObject layer;
  layer["activation"] = jarvis::util::JsonValue("identity");
  layer["weights"] = jarvis::util::JsonValue(std::move(weights));
  layer["biases"] = jarvis::util::JsonValue(std::move(biases));
  jarvis::util::JsonObject doc;
  doc["input_features"] = jarvis::util::JsonValue(2);
  doc["layers"] = jarvis::util::JsonValue(
      jarvis::util::JsonArray{jarvis::util::JsonValue(std::move(layer))});
  EXPECT_THROW(
      FromJson(jarvis::util::JsonValue(std::move(doc)),
               Loss::kMeanSquaredError, std::make_unique<Adam>(0.005),
               jarvis::util::Rng(0)),
      jarvis::util::JsonError);
}

}  // namespace
}  // namespace jarvis::neural
